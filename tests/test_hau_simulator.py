"""HAU simulator: cycles, per-core stats, persistence."""

import pytest

from conftest import make_batch
from repro.graph.adjacency_list import AdjacencyListGraph
from repro.hau.config import HAUConfig
from repro.hau.controller import scan_lines_for_cluster
from repro.hau.simulator import HAUSimulator
from repro.hau.tasks import VertexTaskCluster


def _simulate(batches, num_vertices=512):
    graph = AdjacencyListGraph(num_vertices)
    sim = HAUSimulator()
    results = [sim.simulate_batch(graph.apply_batch(b)) for b in batches]
    return sim, results


def test_empty_batch_costs_trigger_only():
    sim, (result,) = _simulate([make_batch([], [])])
    assert result.cycles == pytest.approx(sim.trigger_cycles)
    assert all(v == 0 for v in result.tasks_per_core.values())


def test_tasks_distributed_across_cores():
    batch = make_batch(list(range(300)), [(v + 1) % 512 for v in range(300)])
    __, (result,) = _simulate([batch])
    tasks = result.tasks_per_core
    assert sum(tasks.values()) == 600  # 300 edges x 2 directions
    assert min(tasks.values()) > 0
    # mod-15 over a uniform id range balances within ~3x.
    assert max(tasks.values()) < 3 * min(tasks.values())


def test_hot_vertex_concentrates_on_one_core():
    batch = make_batch([7] * 200, [(i + 10) % 512 for i in range(200)])
    __, (result,) = _simulate([batch])
    hot_core = max(result.tasks_per_core, key=result.tasks_per_core.get)
    assert result.tasks_per_core[hot_core] >= 200
    assert result.timing.limiter == "chain"


def test_cache_state_persists_across_batches():
    batch0 = make_batch(list(range(100)), [(v + 1) % 512 for v in range(100)], batch_id=0)
    batch1 = make_batch(list(range(100)), [(v + 2) % 512 for v in range(100)], batch_id=1)
    sim, results = _simulate([batch0, batch1])
    # Second batch re-touches the same vertices: resident hits make it
    # cheaper per line even though adjacencies grew.
    assert results[1].cycles < 1.5 * results[0].cycles


def test_local_fraction_high():
    batch = make_batch(list(range(400)), [(v + 7) % 512 for v in range(400)])
    __, (result,) = _simulate([batch])
    assert result.local_fraction > 0.9
    assert result.remote_access_reduction > 0.9


def test_packet_latency_increase_small():
    batch = make_batch(list(range(400)), [(v + 7) % 512 for v in range(400)])
    __, (result,) = _simulate([batch])
    assert all(0 <= v < 10.0 for v in result.packet_latency_increase.values())


def test_simulation_is_deterministic():
    batch = make_batch(list(range(200)), [(v + 3) % 512 for v in range(200)])
    __, (a,) = _simulate([batch])
    __, (b,) = _simulate([batch])
    assert a.cycles == b.cycles
    assert a.tasks_per_core == b.tasks_per_core


def test_results_accumulate_on_simulator():
    batches = [
        make_batch([1], [2], batch_id=0),
        make_batch([3], [4], batch_id=1),
    ]
    sim, __ = _simulate(batches)
    assert [r.batch_id for r in sim.results] == [0, 1]


def test_scan_lines_accounting():
    cfg = HAUConfig()
    cluster = VertexTaskCluster(vertex=1, tasks=4, length_before=16, new_edges=4, consumer=1)
    lines = scan_lines_for_cluster(cluster, cfg)
    # 4 inserts scanning 16 + growth ramp, /8 per line, + 1 line min each.
    assert lines == pytest.approx((4 * (16 + 1.5)) / 8 + 4)


def test_duplicates_scan_less_than_inserts():
    cfg = HAUConfig()
    inserts = VertexTaskCluster(1, tasks=4, length_before=64, new_edges=4, consumer=1)
    duplicates = VertexTaskCluster(1, tasks=4, length_before=64, new_edges=0, consumer=1)
    assert scan_lines_for_cluster(duplicates, cfg) < scan_lines_for_cluster(inserts, cfg)


def test_mshr_and_fifo_stats_reported():
    batch = make_batch(list(range(300)), [(v + 1) % 512 for v in range(300)])
    __, (result,) = _simulate([batch])
    assert result.mshr_peak_occupancy >= 0
    assert result.fifo_peak_fill >= 0
