"""Characterization, accuracy grid and report rendering."""

import pytest

from repro.analysis.accuracy import (
    FIG18_EXCLUDED_DATASETS,
    FIG18_GRID,
    accuracy_grid,
    decision_accuracy,
)
from repro.analysis.characterization import (
    CellCharacterization,
    characterize_cell,
    geomean,
)
from repro.analysis.report import render_kv, render_series, render_table
from repro.errors import AnalysisError


def test_geomean():
    assert geomean([2.0, 8.0]) == pytest.approx(4.0)
    assert geomean([3.0]) == pytest.approx(3.0)
    with pytest.raises(ValueError):
        geomean([1.0, 0.0])
    with pytest.raises(ValueError):
        geomean([])


def test_characterize_cell_flat_profile_is_adverse(flat_profile):
    cell = characterize_cell(flat_profile, batch_size=500, num_batches=4)
    assert cell.ro_speedup < 1.0
    assert not cell.ro_friendly
    assert cell.num_batches == 4
    assert all(cad == 0.0 for cad in cell.per_batch_cads)
    assert not any(cell.per_batch_ro_beneficial)


def test_characterize_cell_skewed_profile_becomes_friendly(skewed_profile):
    cell = characterize_cell(skewed_profile, batch_size=5_000, num_batches=5)
    assert cell.ro_speedup > 1.0
    assert cell.usc_speedup > cell.ro_speedup
    assert cell.max_degree > 100


def test_decision_accuracy_counts_batches():
    cell = CellCharacterization(
        dataset="x", batch_size=10, num_batches=4,
        baseline_update=1.0, ro_update=1.0, usc_update=1.0, max_degree=0.0,
        per_batch_ro_beneficial=(True, True, False, False),
        per_batch_cads=(500.0, 100.0, 500.0, 100.0),
    )
    point = decision_accuracy([cell], lam=256, threshold=465.0)
    # Decisions: T, F, T, F vs truth T, T, F, F -> 2 of 4 correct.
    assert point.accuracy == pytest.approx(0.5)
    assert point.examples == 4


def test_decision_accuracy_requires_examples():
    with pytest.raises(AnalysisError):
        decision_accuracy([], 256, 465.0)


def test_fig18_grid_shape():
    assert (256, 465.0) in FIG18_GRID
    assert len(FIG18_GRID) == 9
    assert FIG18_EXCLUDED_DATASETS == {"yt", "friendster", "uk"}


def test_accuracy_grid_calls_characterizer(flat_profile):
    calls = []

    def fake_characterize(name, batch_size, lam):
        calls.append((name, batch_size, lam))
        return CellCharacterization(
            dataset=name, batch_size=batch_size, num_batches=1,
            baseline_update=1.0, ro_update=2.0, usc_update=2.0, max_degree=1.0,
            per_batch_ro_beneficial=(False,), per_batch_cads=(0.0,),
        )

    points = accuracy_grid(
        fake_characterize, batch_sizes=(100,), grid=((8, 35.0),), datasets=["a", "b"]
    )
    assert len(points) == 1
    assert points[0].accuracy == 1.0  # CAD 0 < 35 and RO not beneficial
    assert calls == [("a", 100, 8), ("b", 100, 8)]


def test_render_table():
    out = render_table(["a", "bb"], [[1, 2.5], ["x", 3.0]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert "2.50" in out and "3.00" in out


def test_render_series():
    out = render_series("s", [100, 200], [1.5, 2.0])
    assert "series s:" in out
    assert "100 = 1.50" in out


def test_render_kv():
    out = render_kv("cfg", {"alpha": 1.23456, "name": "x"})
    assert "cfg" in out
    assert "1.235" in out
    assert "name" in out
