"""Task production and mod-N assignment."""

from conftest import make_batch
from repro.graph.adjacency_list import AdjacencyListGraph
from repro.hau.config import HAUConfig
from repro.hau.tasks import clusters_from_stats, consumer_core, producer_core

CFG = HAUConfig()


def test_consumer_core_mod_n_mapping():
    workers = CFG.worker_cores
    assert consumer_core(0, CFG) == workers[0]
    assert consumer_core(15, CFG) == workers[0]  # 15 mod 15 == 0
    assert consumer_core(16, CFG) == workers[1]
    # Same vertex always maps to the same core (race safety).
    assert consumer_core(7, CFG) == consumer_core(7, CFG)


def test_master_core_never_consumes():
    for v in range(200):
        assert consumer_core(v, CFG) != CFG.master_core


def test_producer_round_robin():
    producers = {producer_core(i, CFG) for i in range(30)}
    assert producers == set(CFG.worker_cores)


def test_clusters_cover_both_directions(tiny_graph):
    stats = tiny_graph.apply_batch(make_batch([1, 1, 2], [3, 4, 4]))
    clusters = clusters_from_stats(stats, CFG)
    # Out direction: vertices 1, 2. In direction: vertices 3, 4.
    assert len(clusters) == 4
    total_tasks = sum(c.tasks for c in clusters)
    assert total_tasks == 6  # 3 edges x 2 directions


def test_cluster_fields_match_stats(tiny_graph):
    tiny_graph.apply_batch(make_batch([1], [2]))
    stats = tiny_graph.apply_batch(make_batch([1, 1], [2, 3], batch_id=1))
    clusters = clusters_from_stats(stats, CFG)
    out1 = next(c for c in clusters if c.vertex == 1 and c.tasks == 2)
    assert out1.length_before == 1
    assert out1.new_edges == 1  # edge 1->2 is a duplicate
    assert out1.consumer == consumer_core(1, CFG)


def test_empty_batch_has_no_clusters(tiny_graph):
    stats = tiny_graph.apply_batch(make_batch([], []))
    assert clusters_from_stats(stats, CFG) == []
