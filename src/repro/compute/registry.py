"""Pluggable compute-algorithm registry for the streaming pipeline.

The pipeline's compute phase dispatches to a :class:`ComputeAlgorithm`
looked up here by name.  The built-in algorithms (Section 6.1's four plus
the extension algorithms) self-register in
:mod:`repro.compute.algorithms`; third-party algorithms register from
anywhere — no pipeline edits required:

    from repro.compute.registry import ComputeAlgorithm, register_algorithm

    @register_algorithm("my_metric")
    class MyMetric(ComputeAlgorithm):
        def on_round(self, batch, affected, covered):
            ...
            return ComputeCounters(iterations=1, ...)

    StreamingPipeline(profile, 1_000, algorithm="my_metric").run(4)

Registered names automatically become valid pipeline algorithms and CLI
``--algorithm`` choices (:data:`ALGORITHMS` is a live view).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..datasets.stream import Batch
    from ..graph.base import DynamicGraph
    from .result import ComputeCounters

__all__ = [
    "ALGORITHM_REGISTRY",
    "ALGORITHMS",
    "AlgorithmContext",
    "ComputeAlgorithm",
    "algorithm_names",
    "get_algorithm",
    "register_algorithm",
]


@dataclass
class AlgorithmContext:
    """Everything a pipeline hands its compute algorithm at construction.

    Mutable on purpose: algorithms that resolve settings lazily (e.g. the
    SSSP family picking a source from the first batch) write the resolved
    value back, so it is observable on the pipeline.

    Attributes:
        graph: the dynamic graph the update phase mutates.
        pr_tolerance / pr_max_rounds: PageRank convergence settings (both
            the incremental and static variants honour them).
        sssp_source: source vertex for SSSP/BFS; None = first batch's first
            source endpoint.
        telemetry: the pipeline's telemetry backend (None when
            uninstrumented); algorithms pass it to the substrate pieces
            they own (e.g. the snapshotter).
    """

    graph: "DynamicGraph"
    pr_tolerance: float = 1e-7
    pr_max_rounds: int = 100
    sssp_source: int | None = None
    telemetry: object = None


class ComputeAlgorithm:
    """One streaming analytics algorithm driven by the pipeline.

    Lifecycle: instantiated once per pipeline with an
    :class:`AlgorithmContext`; :meth:`ensure` runs before *every* batch is
    ingested (lazy engine construction against the pre-batch graph);
    :meth:`on_round` runs once per non-deferred compute round.
    """

    #: Registry key (set by :func:`register_algorithm`).
    name: str = ""

    def __init__(self, ctx: AlgorithmContext):
        self.ctx = ctx

    def ensure(self, graph: "DynamicGraph", first_batch: "Batch") -> None:
        """Prepare per-stream state; called before each batch is applied."""

    def on_round(
        self,
        batch: "Batch",
        affected,
        covered: list["Batch"],
    ) -> "ComputeCounters | None":
        """Execute one compute round.

        Args:
            batch: the batch that triggered this round.
            affected: union of vertices touched since the last round
                (including OCA-deferred batches'), as an int array.
            covered: every batch this round covers, oldest first.

        Returns:
            The round's work counters, or None for update-only algorithms
            (the round then costs zero modeled time).
        """
        raise NotImplementedError


#: Registry: algorithm name -> ComputeAlgorithm subclass.
ALGORITHM_REGISTRY: dict[str, type[ComputeAlgorithm]] = {}


def register_algorithm(name: str):
    """Class decorator registering a :class:`ComputeAlgorithm` under ``name``."""

    def decorate(cls: type[ComputeAlgorithm]) -> type[ComputeAlgorithm]:
        if not name:
            raise ConfigurationError("algorithm name must be non-empty")
        cls.name = name
        ALGORITHM_REGISTRY[name] = cls
        return cls

    return decorate


def algorithm_names() -> tuple[str, ...]:
    """Registered algorithm names, in registration order."""
    return tuple(ALGORITHM_REGISTRY)


def get_algorithm(name: str) -> type[ComputeAlgorithm]:
    """Look an algorithm class up by name.

    Raises:
        ConfigurationError: for unregistered names.
    """
    try:
        return ALGORITHM_REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"algorithm must be one of {algorithm_names()}, got {name!r}"
        ) from None


class _AlgorithmNames(Sequence):
    """Live, tuple-like view of the registered algorithm names.

    Keeps ``ALGORITHMS`` (and CLI choices built from it) automatically in
    sync with the registry, unlike a tuple frozen at import time.
    """

    def __len__(self) -> int:
        return len(ALGORITHM_REGISTRY)

    def __getitem__(self, index):
        return algorithm_names()[index]

    def __contains__(self, name) -> bool:
        return name in ALGORITHM_REGISTRY

    def __iter__(self):
        return iter(ALGORITHM_REGISTRY)

    def __repr__(self) -> str:
        return repr(algorithm_names())

    def __eq__(self, other) -> bool:
        return tuple(self) == tuple(other) if isinstance(other, (tuple, list, Sequence)) else NotImplemented

    def __hash__(self):
        return hash(tuple(self))


#: Supported algorithm labels (live registry view): Section 6.1's four
#: algorithms, the extension algorithms, "none", and anything registered
#: via :func:`register_algorithm`.
ALGORITHMS: Sequence[str] = _AlgorithmNames()
