"""Property-based tests on stream-generator calibration invariants."""

from hypothesis import given, settings, strategies as st

from repro.datasets.generators import SideProfile, StreamGenerator
from repro.graph.stats import degree_counts
from repro.update.cad import cad_from_degrees

side_profiles = st.builds(
    SideProfile,
    hub_mass=st.floats(0.0, 0.6),
    hub_count=st.integers(1, 100),
    hub_alpha=st.floats(0.0, 2.0),
    tail_size=st.integers(100, 5_000),
)


def _generator(src, dst, **kwargs):
    return StreamGenerator(
        src_profile=src, dst_profile=dst, num_vertices=6_000, seed=5, **kwargs
    )


@given(side_profiles, side_profiles, st.integers(0, 20))
@settings(max_examples=40, deadline=None)
def test_batches_are_valid(src, dst, batch_id):
    batch = _generator(src, dst).generate_batch(batch_id, 500)
    assert batch.size == 500
    assert (batch.src != batch.dst).all()
    assert batch.src.min() >= 0 and batch.src.max() < 6_000
    assert batch.dst.min() >= 0 and batch.dst.max() < 6_000
    assert (batch.weight >= 1).all() and (batch.weight <= 16).all()


@given(side_profiles, side_profiles)
@settings(max_examples=30, deadline=None)
def test_determinism_property(src, dst):
    a = _generator(src, dst).generate_batch(3, 400)
    b = _generator(src, dst).generate_batch(3, 400)
    assert (a.src == b.src).all() and (a.dst == b.dst).all()


@given(side_profiles, st.integers(500, 8_000))
@settings(max_examples=30, deadline=None)
def test_ramp_never_increases_top_degree(dst, ramp):
    flat_src = SideProfile(0.0, 0, 0.0, 5_000)
    plain = _generator(flat_src, dst).generate_batch(0, 2_000)
    ramped = _generator(flat_src, dst, hub_ramp=ramp).generate_batch(0, 2_000)
    # Statistical, but with matched seeds the hub draw count shrinks.
    assert ramped.max_degree() <= plain.max_degree() + 5


@given(st.integers(4, 64))
@settings(max_examples=20, deadline=None)
def test_pool_bounds_lifetime_neighborhood(pool):
    src = SideProfile(0.0, 0, 0.0, 5_000)
    dst = SideProfile(0.6, 4, 1.5, 5_000)
    gen = _generator(src, dst, hub_in_pool=pool)
    sources = set()
    for i in range(10):
        batch = gen.generate_batch(i, 1_000)
        mask = batch.dst == 0  # top hub
        sources.update(batch.src[mask].tolist())
    assert len(sources) <= pool


@given(side_profiles)
@settings(max_examples=30, deadline=None)
def test_cad_bounded_by_max_degree(dst):
    src = SideProfile(0.0, 0, 0.0, 5_000)
    batch = _generator(src, dst).generate_batch(0, 3_000)
    counts = degree_counts(batch, "in")
    for lam in (4, 16, 64):
        cad = cad_from_degrees(counts, batch.size, lam)
        assert cad <= counts.max() + 1e-9
