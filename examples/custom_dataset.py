"""Bring your own stream: define a dataset profile and characterize it.

Shows the extension path a downstream user takes for their own workload:
describe the stream's endpoint degree behaviour with ``SideProfile``s, wrap
them in a ``DatasetProfile``, and let the library characterize whether batch
reordering pays off — and at which batch sizes ABR will enable it.

Run:  python examples/custom_dataset.py
"""

import os

from repro import DatasetProfile, SideProfile
from repro.analysis import characterize_cell, render_table

QUICK = os.environ.get("REPRO_EXAMPLE_QUICK") == "1"
MAX_BATCHES = 3 if QUICK else 6

# An IoT telemetry graph: millions of sensors (uniform sources) reporting to
# a small set of aggregation gateways (a heavy-tailed destination side).
iot = DatasetProfile(
    name="iot-telemetry",
    full_name="IoT sensor-to-gateway telemetry",
    kind="timestamped",
    paper_vertices=0, paper_edges=0,      # not from the paper
    num_vertices=80_000,
    stream_edges=1_000_000,
    src_profile=SideProfile(hub_mass=0.0, hub_count=0, hub_alpha=0.0,
                            tail_size=80_000),
    dst_profile=SideProfile(hub_mass=0.30, hub_count=64, hub_alpha=1.2,
                            tail_size=79_000),
    hub_in_pool=4_000,
)


def main() -> None:
    rows = []
    for batch_size in (1_000, 10_000, 100_000):
        cell = characterize_cell(
            iot, batch_size,
            num_batches=min(MAX_BATCHES, iot.num_batches(batch_size)),
        )
        rows.append([
            batch_size,
            cell.ro_speedup,
            cell.usc_speedup,
            cell.max_degree,
            max(cell.per_batch_cads),
            "reorder (SW mode)" if max(cell.per_batch_cads) >= 465
            else "don't reorder (HAU candidates)",
        ])
    print(render_table(
        ["batch size", "RO speedup", "RO+USC speedup", "max batch degree",
         "CAD_256", "ABR decision at TH=465"],
        rows,
        title=f"RO characterization of custom dataset '{iot.name}'",
    ))
    print("\nGateways concentrate edges, so large batches become "
          "reorder-friendly; pick the execution mode per batch size "
          "accordingly (or just run ABR and let it decide online).")


if __name__ == "__main__":
    main()
