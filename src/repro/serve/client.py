"""Protocol client and load generator for ``repro serve``.

:class:`ServeClient` is a thin asyncio line-JSON client — one coroutine
per connection, strict request/reply.  :func:`run_loadgen` drives N
concurrent ingest clients (plus an optional query client) against a
server and reports achieved throughput, per-request ack latency, and the
server's own ingest-to-visible quantiles; ``repro loadgen`` is its CLI
face and ``benchmarks/test_perf_serve.py`` its bench harness.
"""

from __future__ import annotations

import asyncio
import json
import time

import numpy as np

from ..errors import ConfigurationError
from ..telemetry.heartbeat import _quantile

__all__ = ["ServeClient", "run_loadgen"]


class ServeClient:
    """One line-JSON connection to a :class:`~repro.serve.server.ServeServer`.

    Use :meth:`connect`; every request coroutine sends one JSON line and
    awaits exactly one reply line (the server replies in order).  Not
    task-safe: one in-flight request per client, by design.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, host: str, port: int,
                      tenant: str | None = None) -> "ServeClient":
        """Open a connection and complete the ``hello`` handshake.

        The server's ``hello`` reply (dataset, algorithm, vertex count,
        resolved tenant name) lands on :attr:`hello_info`.
        """
        reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer)
        request: dict = {"op": "hello"}
        if tenant is not None:
            request["tenant"] = tenant
        client.hello_info = await client.request(request)
        return client

    async def request(self, payload: dict) -> dict:
        """Send one request object and await its reply object."""
        self._writer.write(json.dumps(payload).encode() + b"\n")
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    async def send_edges(self, edges: list) -> dict:
        """Submit edges (``[src, dst, weight?, delete?]`` lists)."""
        return await self.request({"op": "edges", "edges": edges})

    async def query(self, what: str, **params) -> dict:
        """Run a snapshot query (``pagerank_topk``/``triangles``/``degree``)."""
        return await self.request({"op": "query", "what": what, **params})

    async def stats(self) -> dict:
        return await self.request({"op": "stats"})

    async def flush(self) -> dict:
        """Ask the server to cut the current partial micro-batch now."""
        return await self.request({"op": "flush"})

    async def close(self) -> None:
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def _ingest_worker(
    host: str,
    port: int,
    tenant: str,
    edges_total: int,
    submit_size: int,
    num_vertices: int | None,
    seed: int,
    results: dict,
) -> None:
    client = await ServeClient.connect(host, port, tenant=tenant)
    try:
        nv = num_vertices or int(client.hello_info.get("num_vertices", 1024))
        rng = np.random.default_rng(seed)
        sent = 0
        acks: list[float] = []
        rejected = 0
        while sent < edges_total:
            n = min(submit_size, edges_total - sent)
            src = rng.integers(0, nv, size=n)
            dst = rng.integers(0, nv, size=n)
            edges = [[int(s), int(d)] for s, d in zip(src, dst)]
            started = time.monotonic()
            reply = await client.send_edges(edges)
            if reply.get("ok"):
                acks.append(time.monotonic() - started)
                sent += n
            else:
                rejected += 1
                if reply.get("error") == "draining":
                    break
                await asyncio.sleep(
                    min(1.0, float(reply.get("retry_after") or 0.05))
                )
        results[tenant] = {
            "edges_sent": sent,
            "requests": len(acks),
            "rejected": rejected,
            "ack_latencies": acks,
        }
    finally:
        await client.close()


async def _query_worker(
    host: str,
    port: int,
    what: str,
    interval: float,
    done: asyncio.Event,
    results: dict,
) -> None:
    client = await ServeClient.connect(host, port, tenant="loadgen-query")
    try:
        served = 0
        failed = 0
        latencies: list[float] = []
        params = {"k": 5} if what == "pagerank_topk" else {}
        if what == "degree":
            params = {"vertex": 0}
        while not done.is_set():
            started = time.monotonic()
            reply = await client.query(what, **params)
            if reply.get("ok"):
                served += 1
                latencies.append(time.monotonic() - started)
            else:
                failed += 1
            try:
                await asyncio.wait_for(done.wait(), timeout=interval)
            except asyncio.TimeoutError:
                pass
        results["query"] = {
            "served": served, "failed": failed, "latencies": latencies,
        }
    finally:
        await client.close()


async def run_loadgen(
    host: str,
    port: int,
    *,
    clients: int = 2,
    edges: int = 20_000,
    submit_size: int = 500,
    num_vertices: int | None = None,
    seed: int = 7,
    query: str | None = None,
    query_interval: float = 0.05,
) -> dict:
    """Drive a running server and measure it; returns the report dict.

    Args:
        host / port: the server address.
        clients: concurrent ingest connections (distinct tenants).
        edges: edges *per client*.
        submit_size: edges per ``edges`` request.
        num_vertices: vertex-id range (defaults to the server's universe).
        seed: base RNG seed (client ``i`` uses ``seed + i``).
        query: also run a query client issuing this query concurrently
            (``pagerank_topk``, ``triangles`` or ``degree``).
        query_interval: seconds between queries.

    The report contains client-side numbers (achieved edges/s, ack-latency
    quantiles, query latency quantiles) and the server's own ``stats``
    reply (ingest-to-visible quantiles, admission stats) under
    ``"server"``.
    """
    if clients < 1:
        raise ConfigurationError(f"clients must be >= 1, got {clients}")
    results: dict = {}
    done = asyncio.Event()
    tasks = [
        asyncio.ensure_future(
            _ingest_worker(
                host, port, f"loadgen-{i}", edges, submit_size,
                num_vertices, seed + i, results,
            )
        )
        for i in range(clients)
    ]
    query_task = None
    if query:
        query_task = asyncio.ensure_future(
            _query_worker(host, port, query, query_interval, done, results)
        )
    started = time.monotonic()
    await asyncio.gather(*tasks)
    ingest_wall = time.monotonic() - started
    done.set()
    if query_task is not None:
        await query_task

    # Wait for everything sent to become visible, then read server stats.
    control = await ServeClient.connect(host, port, tenant="loadgen-control")
    try:
        await control.flush()
        server_stats = await control.stats()
        deadline = time.monotonic() + 30.0
        while (
            server_stats.get("lag_edges", 0) > 0
            and time.monotonic() < deadline
        ):
            await asyncio.sleep(0.02)
            await control.flush()
            server_stats = await control.stats()
    finally:
        await control.close()

    acks = [
        sample
        for name, r in results.items()
        if name != "query"
        for sample in r["ack_latencies"]
    ]
    edges_sent = sum(
        r["edges_sent"] for name, r in results.items() if name != "query"
    )
    requests = sum(
        r["requests"] for name, r in results.items() if name != "query"
    )
    report = {
        "clients": clients,
        "edges_sent": edges_sent,
        "requests": requests,
        "rejected_requests": sum(
            r["rejected"] for name, r in results.items() if name != "query"
        ),
        "wall_seconds": ingest_wall,
        "edges_per_second": edges_sent / ingest_wall if ingest_wall else 0.0,
        "requests_per_second": requests / ingest_wall if ingest_wall else 0.0,
        "ack_latency_s": {
            "p50": _quantile(acks, 0.50),
            "p95": _quantile(acks, 0.95),
            "p99": _quantile(acks, 0.99),
        },
        "server": server_stats,
    }
    if "query" in results:
        q = results["query"]
        report["queries"] = {
            "served": q["served"],
            "failed": q["failed"],
            "latency_s": {
                "p50": _quantile(q["latencies"], 0.50),
                "p99": _quantile(q["latencies"], 0.99),
            },
        }
    return report
