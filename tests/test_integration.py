"""Cross-module integration: pipelines, modes and the SW/HW proposal."""

import numpy as np
import pytest

from repro.datasets.profiles import get_dataset
from repro.exec_model.machine import SIMULATED_MACHINE
from repro.graph.adjacency_list import AdjacencyListGraph
from repro.hau.simulator import HAUSimulator
from repro.pipeline.runner import StreamingPipeline
from repro.update.engine import UpdateEngine, UpdatePolicy

FB = get_dataset("fb")        # reorder-adverse, timestamped
WIKI = get_dataset("wiki")    # reorder-friendly at >= 10K


def _run(profile, batch_size, policy, nb, algorithm="none", **kwargs):
    return StreamingPipeline(profile, batch_size, algorithm, policy, **kwargs).run(nb)


def test_final_graph_state_identical_across_policies():
    """Execution strategy affects modeled time only, never graph state."""
    graphs = []
    for policy in (UpdatePolicy.BASELINE, UpdatePolicy.ALWAYS_RO, UpdatePolicy.ABR_USC):
        pipeline = StreamingPipeline(FB, 1_000, "none", policy)
        pipeline.run(5)
        graphs.append(pipeline.graph)
    reference = graphs[0]
    for other in graphs[1:]:
        assert other.num_edges == reference.num_edges
        for v in reference.vertices_with_edges():
            assert other.out_neighbors(v) == reference.out_neighbors(v)


def test_hau_policy_graph_state_matches_software():
    sw = StreamingPipeline(FB, 1_000, "none", UpdatePolicy.BASELINE)
    sw.run(4)
    hw = StreamingPipeline(
        FB, 1_000, "none", UpdatePolicy.ALWAYS_HAU,
        machine=SIMULATED_MACHINE, hau=HAUSimulator(),
    )
    hw.run(4)
    assert hw.graph.num_edges == sw.graph.num_edges


def test_abr_recovers_adverse_performance():
    """Fig. 13: ABR pulls adverse cells back toward the baseline."""
    nb = 8
    baseline = _run(FB, 10_000, UpdatePolicy.BASELINE, nb).total_update_time
    always_ro = _run(FB, 10_000, UpdatePolicy.ALWAYS_RO, nb).total_update_time
    abr = _run(FB, 10_000, UpdatePolicy.ABR, nb).total_update_time
    assert always_ro > baseline          # RO degrades the adverse dataset
    assert abr < always_ro               # ABR recovers most of the loss
    assert abr < 1.35 * baseline         # close to baseline (0.87x paper avg)


def test_abr_keeps_friendly_gains():
    nb = 6
    baseline = _run(WIKI, 10_000, UpdatePolicy.BASELINE, nb).total_update_time
    always_ro = _run(WIKI, 10_000, UpdatePolicy.ALWAYS_RO, nb).total_update_time
    abr = _run(WIKI, 10_000, UpdatePolicy.ABR, nb).total_update_time
    assert always_ro < baseline
    assert abr < 1.2 * always_ro  # near the always-RO win despite overheads


def test_perfect_abr_upper_bounds_abr():
    nb = 8
    perfect = _run(FB, 10_000, UpdatePolicy.PERFECT_ABR, nb).total_update_time
    abr = _run(FB, 10_000, UpdatePolicy.ABR, nb).total_update_time
    assert perfect <= abr * 1.001


def test_dynamic_mode_beats_sw_only_and_hw_only_on_mixed_inputs():
    """Section 4.5 / Fig. 15: input-aware SW/HW beats either extreme.

    Adverse input: dynamic (HAU path) must beat SW-only (enforced RO+USC).
    Friendly input: dynamic (SW path) must beat HW-only (enforced HAU).
    """
    nb = 6
    machine = SIMULATED_MACHINE

    dynamic_adverse = _run(
        FB, 10_000, UpdatePolicy.ABR_USC_HAU, nb,
        machine=machine, hau=HAUSimulator(),
    ).total_update_time
    sw_only_adverse = _run(
        FB, 10_000, UpdatePolicy.ALWAYS_RO_USC, nb, machine=machine
    ).total_update_time
    assert dynamic_adverse < sw_only_adverse

    dynamic_friendly = _run(
        WIKI, 10_000, UpdatePolicy.ABR_USC_HAU, nb,
        machine=machine, hau=HAUSimulator(),
    ).total_update_time
    hw_only_friendly = _run(
        WIKI, 10_000, UpdatePolicy.ALWAYS_HAU, nb,
        machine=machine, hau=HAUSimulator(),
    ).total_update_time
    assert dynamic_friendly < hw_only_friendly


def test_enforced_hau_degrades_on_friendly_input():
    """Fig. 15 (right): HW-only loses on high-degree batches because the hot
    vertex's task queue serializes on one core without search coalescing.

    Measured at 100K, where the hub clusters are large enough for the effect
    to be decisive (at 10K the two modes are within a few percent).
    """
    nb = 5
    machine = SIMULATED_MACHINE
    sw = _run(WIKI, 100_000, UpdatePolicy.ABR_USC, nb, machine=machine)
    hw = _run(
        WIKI, 100_000, UpdatePolicy.ALWAYS_HAU, nb,
        machine=machine, hau=HAUSimulator(),
    )
    assert hw.total_update_time > 1.3 * sw.total_update_time


def test_pagerank_values_identical_across_update_policies():
    """The compute phase sees identical snapshots whatever the update mode."""
    runs = []
    for policy in (UpdatePolicy.BASELINE, UpdatePolicy.ABR_USC):
        pipeline = StreamingPipeline(FB, 2_000, "pr", policy)
        pipeline.run(3)
        runs.append(pipeline._incremental_pr.as_array())
    np.testing.assert_allclose(runs[0], runs[1])


def test_oca_preserves_pagerank_results():
    plain = StreamingPipeline(WIKI, 10_000, "pr", UpdatePolicy.BASELINE)
    plain.run(4)
    from repro.compute.oca import OCAConfig

    aggregated = StreamingPipeline(
        WIKI, 10_000, "pr", UpdatePolicy.BASELINE,
        use_oca=True, oca_config=OCAConfig(overlap_threshold=0.01, n=2),
    )
    aggregated.run(4)
    np.testing.assert_allclose(
        plain._incremental_pr.as_array(),
        aggregated._incremental_pr.as_array(),
        atol=1e-6,
    )
