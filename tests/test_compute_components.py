"""Connected components: union-find incremental + label propagation static."""

import networkx as nx
import numpy as np

from conftest import make_batch
from repro.compute.components import (
    IncrementalConnectedComponents,
    StaticConnectedComponents,
)
from repro.graph.adjacency_list import AdjacencyListGraph
from repro.graph.snapshot import take_snapshot


def test_static_labels_chain_and_isolate():
    graph = AdjacencyListGraph(5)
    graph.apply_batch(make_batch([0, 1], [1, 2]))
    labels, counters = StaticConnectedComponents().run(take_snapshot(graph))
    assert labels[0] == labels[1] == labels[2] == 0
    assert labels[3] == 3 and labels[4] == 4
    assert counters.iterations >= 1


def test_static_matches_networkx(small_generator):
    graph = AdjacencyListGraph(500)
    for batch in small_generator.batches(600, 2):
        graph.apply_batch(batch)
    labels, __ = StaticConnectedComponents().run(take_snapshot(graph))
    g = nx.Graph()
    g.add_nodes_from(range(500))
    for u in graph.vertices_with_edges():
        for v in graph.out_neighbors(u):
            g.add_edge(u, v)
    for component in nx.connected_components(g):
        expected = min(component)
        for v in component:
            assert labels[v] == expected


def test_incremental_unions_on_insert():
    graph = AdjacencyListGraph(6)
    cc = IncrementalConnectedComponents(graph)
    batch = make_batch([0, 2], [1, 3])
    graph.apply_batch(batch)
    cc.on_batch(batch)
    assert cc.same_component(0, 1)
    assert cc.same_component(2, 3)
    assert not cc.same_component(0, 2)
    bridge = make_batch([1], [2], batch_id=1)
    graph.apply_batch(bridge)
    cc.on_batch(bridge)
    assert cc.same_component(0, 3)


def test_incremental_matches_static_on_stream(small_generator):
    graph = AdjacencyListGraph(500)
    cc = IncrementalConnectedComponents(graph)
    for batch in small_generator.batches(500, 3):
        graph.apply_batch(batch)
        cc.on_batch(batch)
    static, __ = StaticConnectedComponents().run(take_snapshot(graph))
    np.testing.assert_array_equal(cc.labels(), static)


def test_deletion_triggers_rebuild_and_splits():
    graph = AdjacencyListGraph(4)
    cc = IncrementalConnectedComponents(graph)
    chain = make_batch([0, 1, 2], [1, 2, 3])
    graph.apply_batch(chain)
    cc.on_batch(chain)
    assert cc.same_component(0, 3)
    cut = make_batch([1], [2], batch_id=1, is_delete=[True])
    graph.apply_batch(cut)
    cc.on_batch(cut)
    assert cc.rebuilds == 1
    assert not cc.same_component(0, 3)
    assert cc.same_component(0, 1)
    assert cc.same_component(2, 3)


def test_counters_report_work():
    graph = AdjacencyListGraph(10)
    cc = IncrementalConnectedComponents(graph)
    batch = make_batch([0, 1, 2], [1, 2, 3])
    graph.apply_batch(batch)
    counters = cc.on_batch(batch)
    assert counters.touched_edges >= 3
    assert counters.touched_vertices == 6  # three merges
