"""Overlap-based compute aggregation (OCA) — Section 5, Fig. 12.

OCA adaptively coarsens the streaming computation granularity when
consecutive batches modify overlapping regions of the graph.  The mechanism:

* the graph representation is augmented with a per-vertex ``latest_bid``
  field recording the last batch in which the vertex appeared, updated along
  with edge updates;
* during an ABR-active batch ``n+1``, an update for vertex ``v`` whose
  ``latest_bid`` reads ``n`` bumps ``overlap_counter``; ``node_counter``
  counts the batch's unique vertices; their ratio is the inter-batch
  locality;
* when the ratio exceeds the (empirically chosen, Section 5) threshold of
  0.25, computation is aggregated: the round after batch ``n`` is skipped and
  a single round after batch ``n+1`` covers both batches' modifications —
  never more than one extra batch's worth of granularity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..costs import DEFAULT_COSTS, CostParameters
from ..datasets.stream import Batch
from ..errors import ConfigurationError
from ..telemetry.core import as_telemetry

__all__ = ["OCAConfig", "OCAObservation", "OCAController"]


@dataclass(frozen=True)
class OCAConfig:
    """OCA parameters.

    Attributes:
        overlap_threshold: locality ratio above which aggregation activates
            (the paper settles on 0.25).
        n: measurement period, aligned with ABR's active-batch period.
    """

    overlap_threshold: float = 0.25
    n: int = 10

    def __post_init__(self) -> None:
        if not 0 < self.overlap_threshold <= 1:
            raise ConfigurationError(
                f"overlap_threshold must be in (0,1], got {self.overlap_threshold}"
            )
        if self.n < 1:
            raise ConfigurationError(f"OCA n must be >= 1, got {self.n}")


@dataclass(frozen=True)
class OCAObservation:
    """Per-batch OCA bookkeeping outcome.

    Attributes:
        overlap: measured inter-batch locality (None on inert batches).
        aggregating: whether aggregation mode is active *after* this batch.
        defer_compute: True if this batch's computation should be deferred
            and folded into the next batch's round.
        instrumentation: modeled bookkeeping time added to the update phase.
    """

    overlap: float | None
    aggregating: bool
    defer_compute: bool
    instrumentation: float


class OCAController:
    """Tracks inter-batch locality and schedules compute aggregation.

    Args:
        num_vertices: vertex universe (sizes the latest_bid array).
        config: OCA parameters.
        costs: cost model providing the per-edge bookkeeping cost.
        num_workers: worker pool the bookkeeping divides across.
        telemetry: optional telemetry backend; measurement/deferral
            counters and aggregate-or-not ledger entries land there.
    """

    def __init__(
        self,
        num_vertices: int,
        config: OCAConfig | None = None,
        costs: CostParameters = DEFAULT_COSTS,
        num_workers: int = 28,
        telemetry=None,
    ):
        if num_vertices < 1:
            raise ConfigurationError(
                f"OCA num_vertices must be >= 1, got {num_vertices}"
            )
        if num_workers < 1:
            # Caught here rather than as a ZeroDivisionError deep inside the
            # instrumentation cost math on the first measured batch.
            raise ConfigurationError(
                f"OCA num_workers must be >= 1, got {num_workers}"
            )
        self.config = config or OCAConfig()
        self.costs = costs
        self.num_workers = num_workers
        self.telemetry = as_telemetry(telemetry)
        self._latest_bid = np.full(num_vertices, -1, dtype=np.int64)
        self.aggregating = False
        self._pending_defer = False
        self.overlaps: list[tuple[int, float]] = []

    def observe(self, batch: Batch) -> OCAObservation:
        """Process one batch: update latest_bid, measure, schedule.

        Must be called exactly once per batch, in stream order.
        """
        unique = batch.unique_vertices()
        if len(unique):
            # ``_latest_bid`` is indexed with raw batch ids below: an id at
            # or above the configured universe would raise IndexError
            # mid-run, and a negative id would silently alias via numpy
            # wraparound and corrupt another vertex's overlap state.
            lo, hi = int(unique[0]), int(unique[-1])  # unique() is sorted
            if lo < 0 or hi >= len(self._latest_bid):
                bad = lo if lo < 0 else hi
                raise ConfigurationError(
                    f"batch {batch.batch_id} contains vertex {bad}, outside "
                    f"the OCA controller's universe of "
                    f"{len(self._latest_bid)} vertices; configure "
                    f"num_vertices to cover every id the stream produces"
                )
        # Batch 1 is always measured (the earliest batch with a predecessor),
        # seeding the first decision just like ABR's batch-0 measurement;
        # afterwards measurement follows the ABR-active cadence.
        active = batch.batch_id == 1 or (
            batch.batch_id > 0 and batch.batch_id % self.config.n == 0
        )
        overlap = None
        instrumentation = 0.0
        if active:
            previous = self._latest_bid[unique]
            node_counter = len(unique)
            overlap_counter = int((previous == batch.batch_id - 1).sum())
            overlap = overlap_counter / node_counter if node_counter else 0.0
            self.aggregating = overlap >= self.config.overlap_threshold
            self.overlaps.append((batch.batch_id, overlap))
            instrumentation = (
                batch.size
                * self.costs.oca_instr_per_edge
                / (self.num_workers * self.costs.parallel_efficiency)
            )
            self.telemetry.count("oca.measurements")
            self.telemetry.decision(
                "oca",
                choice="aggregate" if self.aggregating else "pass",
                batch_id=batch.batch_id,
                overlap=overlap,
                threshold=self.config.overlap_threshold,
            )
        self._latest_bid[unique] = batch.batch_id
        if self.aggregating and not self._pending_defer:
            # Defer this batch's round; the next batch computes for both.
            self._pending_defer = True
            defer = True
            self.telemetry.count("oca.deferrals")
        else:
            self._pending_defer = False
            defer = False
        return OCAObservation(
            overlap=overlap,
            aggregating=self.aggregating,
            defer_compute=defer,
            instrumentation=instrumentation,
        )

    def describe_state(self) -> dict:
        """JSON-friendly digest of the controller's mutable state.

        Used by checkpoint headers so an operator can inspect a run's OCA
        mode without unpickling the payload.
        """
        return {
            "aggregating": bool(self.aggregating),
            "pending_defer": bool(self._pending_defer),
            "measurements": len(self.overlaps),
            "vertices_seen": int((self._latest_bid >= 0).sum()),
        }

    def flush(self) -> bool:
        """True if a deferred round is pending at end-of-stream.

        The pipeline must schedule one final round to cover the deferred
        batch so no modification goes unanalyzed.
        """
        pending = self._pending_defer
        self._pending_defer = False
        return pending
