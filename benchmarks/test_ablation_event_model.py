"""Ablation/validation: analytical HAU model vs event-driven simulation.

The production HAU backend aggregates work per core; the event-driven
backend replays the same batches task by task with real FIFO occupancy and
packet timing.  Their makespans must agree within modeling tolerance — the
evidence that the cheap model is trustworthy at matrix scale.
"""

from _harness import emit
from repro.analysis.report import render_table
from repro.datasets.profiles import get_dataset
from repro.graph.adjacency_list import AdjacencyListGraph
from repro.hau.events import EventDrivenHAU
from repro.hau.simulator import HAUSimulator

CELLS = (("lj", 1_000, 6), ("fb", 1_000, 6), ("patents", 1_000, 6), ("uk", 1_000, 6))


def run_validation():
    rows = []
    for name, batch_size, nb in CELLS:
        profile = get_dataset(name)
        graph_a = AdjacencyListGraph(profile.num_vertices)
        analytical = HAUSimulator()
        total_a = sum(
            analytical.simulate_batch(graph_a.apply_batch(b)).cycles
            for b in profile.generator().batches(batch_size, nb)
        )
        graph_e = AdjacencyListGraph(profile.num_vertices)
        events = EventDrivenHAU()
        total_e = sum(
            events.simulate_batch(graph_e.apply_batch(b)).cycles
            for b in profile.generator().batches(batch_size, nb)
        )
        rows.append([f"{name}-{batch_size}", total_a, total_e, total_e / total_a])
    return rows


def test_ablation_event_model(benchmark):
    rows = benchmark.pedantic(run_validation, rounds=1, iterations=1)
    emit(
        "ablation_event_model",
        render_table(
            ["cell", "analytical cycles", "event-driven cycles", "ratio"],
            rows,
            title="Validation: HAU analytical model vs per-task event simulation",
            float_format="{:.3g}",
        ),
    )
    for row in rows:
        assert 0.6 < row[3] < 1.6, row
