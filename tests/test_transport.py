"""Shard-transport layer: parity, registry resolution, metering, reaping.

Every transport speaks the same ``(command, payload)`` protocol, so a
sharded graph behaves identically over any of them; what differs — and what
these tests pin down — is lifecycle (process reaping on failure paths),
traffic metering, and environment resolution.
"""

from __future__ import annotations

import multiprocessing
import pickle

import numpy as np
import pytest

from conftest import make_batch
from repro.errors import CheckpointError, ConfigurationError, GraphError
from repro.graph.adjacency_list import AdjacencyListGraph
from repro.pipeline import executor
from repro.pipeline.executor import CellExecutionError
from repro.pipeline.partition import build_owner_map
from repro.pipeline.sharding import ShardedGraph
from repro.pipeline.transport import (
    DEFAULT_TRANSPORT,
    SHARD_TRANSPORTS,
    InprocTransport,
    ShardTransport,
    make_transport,
    register_transport,
    resolve_shard_transport,
)

N_VERTICES = 32
TRANSPORTS = sorted(SHARD_TRANSPORTS)


def _batches():
    return [
        make_batch(
            [0, 1, 2, 3, 1, 0], [1, 2, 3, 0, 2, 1],
            [1.0, 2.0, 3.0, 4.0, 9.0, 5.0], batch_id=0,
        ),
        make_batch(
            [1, 2, 0, 7], [2, 3, 1, 8], [8.0, 3.5, 1.5, 2.5], batch_id=1,
            is_delete=[False, True, False, False],
        ),
    ]


def _assert_parity(sharded: ShardedGraph):
    serial = AdjacencyListGraph(N_VERTICES)
    for batch in _batches():
        serial.apply_batch(batch)
    assert sharded.num_edges == serial.num_edges
    for v in serial.vertices_with_edges():
        assert sharded.out_neighbors(v) == serial.out_neighbors(v)
        assert list(sharded.in_neighbors(v)) == list(serial.in_neighbors(v))


# -- per-transport behavior ---------------------------------------------------


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_graph_parity_over_every_transport(transport):
    sharded = ShardedGraph(N_VERTICES, 3, transport=transport)
    try:
        for batch in _batches():
            sharded.apply_batch(batch)
        _assert_parity(sharded)
    finally:
        sharded.close()


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_close_is_idempotent_and_reaps(transport):
    sharded = ShardedGraph(N_VERTICES, 2, transport=transport)
    sharded.apply_batch(_batches()[0])
    procs = list(sharded._procs)
    sharded.close()
    sharded.close()  # idempotent
    assert sharded._conns is None
    assert all(not p.is_alive() for p in procs)
    with pytest.raises(GraphError):
        sharded.apply_batch(_batches()[0])


def test_inproc_spawns_no_processes():
    before = set(multiprocessing.active_children())
    sharded = ShardedGraph(N_VERTICES, 4, transport="inproc")
    try:
        for batch in _batches():
            sharded.apply_batch(batch)
        _assert_parity(sharded)
        assert sharded._procs == []
        assert set(multiprocessing.active_children()) == before
        # Nothing is serialized in-process.
        assert all(c.bytes_sent == 0 for c in sharded._conns)
    finally:
        sharded.close()


@pytest.mark.parametrize("transport", ["shm", "tcp"])
def test_process_transports_meter_traffic(transport):
    sharded = ShardedGraph(N_VERTICES, 2, transport=transport)
    try:
        sharded.apply_batch(_batches()[0])
        assert sum(c.bytes_sent for c in sharded._conns) > 0
        assert sum(c.bytes_received for c in sharded._conns) > 0
    finally:
        sharded.close()


@pytest.mark.parametrize("transport", ["tcp", "inproc"])
def test_pickle_round_trip_preserves_transport(transport):
    original = ShardedGraph(N_VERTICES, 2, transport=transport)
    restored = None
    try:
        original.apply_batch(_batches()[0])
        restored = pickle.loads(pickle.dumps(original))
        assert restored.transport_name == transport
        restored.apply_batch(_batches()[1])
        _assert_parity(restored)
    finally:
        original.close()
        if restored is not None:
            restored.close()


def test_tcp_dead_worker_surfaces_as_cell_execution_error():
    sharded = ShardedGraph(N_VERTICES, 2, transport="tcp")
    try:
        sharded.apply_batch(_batches()[0])
        for proc in sharded._procs:
            proc.kill()
        with pytest.raises(CellExecutionError):
            sharded.apply_batch(_batches()[1])
    finally:
        sharded.close()


def test_tcp_connect_timeout_reaps_workers(monkeypatch):
    """A transport whose workers cannot connect in time must fail the
    construction *and* leave no live child processes behind."""
    monkeypatch.setenv("REPRO_SHARD_CONNECT_TIMEOUT", "0.2")
    # Workers dial a listener that never answers: bind a socket, keep the
    # real port secret by pointing workers at a dead one via a stub main.
    import repro.pipeline.transport as transport_mod

    def _never_connects(spec, host, port, deadline):  # pragma: no cover
        import time

        time.sleep(30)

    monkeypatch.setattr(transport_mod, "_tcp_worker_main", _never_connects)
    before = set(multiprocessing.active_children())
    sharded = ShardedGraph(N_VERTICES, 2, transport="tcp")
    with pytest.raises(CellExecutionError, match="REPRO_SHARD_CONNECT_TIMEOUT"):
        sharded.apply_batch(_batches()[0])
    leaked = set(multiprocessing.active_children()) - before
    assert not leaked
    sharded.close()


# -- worker reaping on partial launch failure ---------------------------------


class _ExplodingSecondProcess:
    """mp-context stand-in whose second Process() constructor raises."""

    def __init__(self, real_ctx):
        self._real = real_ctx
        self.spawned = 0

    def Pipe(self):
        return self._real.Pipe()

    def Process(self, *args, **kwargs):
        self.spawned += 1
        if self.spawned >= 2:
            raise OSError("simulated fork failure")
        return self._real.Process(*args, **kwargs)


@pytest.mark.parametrize("transport", ["shm", "tcp"])
def test_partial_launch_failure_reaps_started_workers(monkeypatch, transport):
    """If worker 2 of 3 fails to spawn, worker 1 must not outlive the
    failed construction."""
    import repro.pipeline.transport as transport_mod

    exploding = _ExplodingSecondProcess(executor.mp_context())
    monkeypatch.setattr(transport_mod, "mp_context", lambda: exploding)
    before = set(multiprocessing.active_children())
    sharded = ShardedGraph(N_VERTICES, 3, transport=transport)
    with pytest.raises(OSError, match="simulated fork failure"):
        sharded.apply_batch(_batches()[0])
    leaked = set(multiprocessing.active_children()) - before
    assert not leaked, [p.name for p in leaked]
    # close() stays safe after the failed construction.
    sharded.close()


def test_failed_restore_reaps_workers():
    """A worker that rejects its restore payload mid-_ensure_workers must
    not leak the already-launched processes."""
    original = ShardedGraph(N_VERTICES, 2, transport="shm")
    original.apply_batch(_batches()[0])
    state = original.__getstate__()
    original.close()
    state["payloads"] = [b"not a pickle", b"also not"]
    broken = ShardedGraph.__new__(ShardedGraph)
    broken.__setstate__(state)
    before = set(multiprocessing.active_children())
    with pytest.raises(GraphError):
        broken.apply_batch(_batches()[1])
    leaked = set(multiprocessing.active_children()) - before
    assert not leaked, [p.name for p in leaked]
    broken.close()


def test_socket_channel_meters_header_plus_payload_without_concat():
    """SocketChannel.send writes header and payload as two sendall calls
    (no `header + data` copy of the payload); the metering must still
    count exactly header + payload bytes and the frame must survive the
    round trip intact."""
    import socket as socket_mod

    from repro.pipeline.transport import _FRAME_HEADER, SocketChannel

    import threading

    a, b = socket_mod.socketpair()
    left, right = SocketChannel(a), SocketChannel(b)

    def roundtrip(sender, receiver, payload):
        # The payload is bigger than a socketpair buffer, so the receive
        # must run concurrently or sendall would block forever.
        box = {}

        def drain():
            box["frame"] = receiver.recv()

        thread = threading.Thread(target=drain)
        thread.start()
        sender.send(payload)
        thread.join(timeout=30)
        assert not thread.is_alive(), "recv never completed"
        return box["frame"]

    try:
        payload = {"arrays": np.arange(50_000, dtype=np.int64), "tag": "x"}
        expected = _FRAME_HEADER.size + len(
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        )
        received = roundtrip(left, right, payload)
        assert received["tag"] == "x"
        np.testing.assert_array_equal(received["arrays"], payload["arrays"])
        assert left.bytes_sent == expected
        assert right.bytes_received == expected
        # Metering parity in the other direction too.
        roundtrip(right, left, payload)
        assert right.bytes_sent == left.bytes_received == expected
    finally:
        left.close()
        right.close()


# -- registry / resolution ----------------------------------------------------


def test_resolve_transport_explicit_env_default(monkeypatch):
    monkeypatch.delenv("REPRO_SHARD_TRANSPORT", raising=False)
    assert resolve_shard_transport(None) == DEFAULT_TRANSPORT
    assert resolve_shard_transport("tcp") == "tcp"
    monkeypatch.setenv("REPRO_SHARD_TRANSPORT", "inproc")
    assert resolve_shard_transport(None) == "inproc"
    assert resolve_shard_transport("shm") == "shm"  # explicit beats env
    monkeypatch.setenv("REPRO_SHARD_TRANSPORT", "carrier-pigeon")
    with pytest.raises(ConfigurationError):
        resolve_shard_transport(None)


def test_env_transport_reaches_graph(monkeypatch):
    monkeypatch.setenv("REPRO_SHARD_TRANSPORT", "inproc")
    sharded = ShardedGraph(N_VERTICES, 2)
    try:
        assert sharded.transport_name == "inproc"
        sharded.apply_batch(_batches()[0])
        assert sharded._procs == []
    finally:
        sharded.close()


def test_register_transport_extensibility():
    @register_transport
    class _Named(InprocTransport):
        name = "_test_inproc2"

    try:
        assert isinstance(make_transport("_test_inproc2"), _Named)
        with pytest.raises(ConfigurationError):
            register_transport(type("Anon", (ShardTransport,), {}))
    finally:
        del SHARD_TRANSPORTS["_test_inproc2"]


# -- placement guard unit (owner-map mismatch without config mismatch) --------


def test_checkpoint_placement_guard_compares_owner_maps():
    from repro.pipeline.checkpoint import _check_shard_placement

    a = ShardedGraph(N_VERTICES, 2, transport="inproc", policy="mod")
    b = ShardedGraph(
        N_VERTICES, 2, transport="inproc",
        owner_map=build_owner_map("hash", N_VERTICES, 2),
    )
    same = ShardedGraph(N_VERTICES, 2, transport="inproc", policy="mod")
    serial = AdjacencyListGraph(N_VERTICES)
    try:
        _check_shard_placement(a, same)  # identical placement: fine
        _check_shard_placement(serial, serial)  # unsharded both sides: fine
        with pytest.raises(CheckpointError):
            _check_shard_placement(a, b)
        with pytest.raises(CheckpointError):
            _check_shard_placement(a, serial)
        with pytest.raises(CheckpointError):
            _check_shard_placement(
                a, ShardedGraph(N_VERTICES, 3, transport="inproc")
            )
    finally:
        a.close()
        b.close()
        same.close()


# -- run-telemetry counters ---------------------------------------------------


def test_partition_and_transport_counters_reach_run_telemetry():
    from repro.telemetry.core import make_telemetry

    run_tel = make_telemetry("basic")
    sharded = ShardedGraph(
        N_VERTICES, 2, transport="shm", run_telemetry=run_tel
    )
    try:
        for batch in _batches():
            sharded.apply_batch(batch)
        counters = run_tel.snapshot().counters
        assert counters["partition.edges"] == 9  # 6 + 3 insertions
        assert counters["partition.cut_edges"] <= counters["partition.edges"]
        # Every inserted edge contributes both its directions to the loads.
        assert counters["partition.load.s00"] + counters[
            "partition.load.s01"
        ] == 2 * counters["partition.edges"]
        assert counters["transport.round_trips"] >= 4
        assert counters["transport.bytes_sent"] > 0
        assert counters["transport.bytes_received"] > 0
    finally:
        sharded.close()


def test_byte_metering_is_consistent_across_transports():
    """Identical work over shm and tcp meters comparable traffic: both
    nonzero, same round-trip count, and shm's pipe bytes strictly smaller
    because batch arrays ship out-of-band through shared memory."""
    from repro.telemetry.core import make_telemetry

    def metered(transport):
        run_tel = make_telemetry("basic")
        sharded = ShardedGraph(
            N_VERTICES, 2, transport=transport, run_telemetry=run_tel
        )
        try:
            for batch in _batches():
                sharded.apply_batch(batch)
            return dict(run_tel.snapshot().counters)
        finally:
            sharded.close()

    shm, tcp = metered("shm"), metered("tcp")
    for counters in (shm, tcp):
        assert counters["transport.bytes_sent"] > 0
        assert counters["transport.bytes_received"] > 0
    assert shm["transport.round_trips"] == tcp["transport.round_trips"]
    assert shm.get("transport.shm_bytes", 0) > 0
    assert "transport.shm_bytes" not in tcp
    assert tcp["transport.bytes_sent"] > shm["transport.bytes_sent"]
