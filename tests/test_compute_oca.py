"""OCA controller: overlap measurement and aggregation scheduling."""

import pytest

from conftest import make_batch
from repro.compute.oca import OCAConfig, OCAController
from repro.costs import CostParameters
from repro.errors import ConfigurationError


def _controller(threshold=0.25, n=10, num_vertices=100):
    return OCAController(
        num_vertices,
        config=OCAConfig(overlap_threshold=threshold, n=n),
        costs=CostParameters(),
        num_workers=8,
    )


def test_config_validation():
    with pytest.raises(ConfigurationError):
        OCAConfig(overlap_threshold=0.0)
    with pytest.raises(ConfigurationError):
        OCAConfig(overlap_threshold=1.5)
    with pytest.raises(ConfigurationError):
        OCAConfig(n=0)


def test_batch_zero_never_measures():
    controller = _controller()
    obs = controller.observe(make_batch([1, 2], [3, 4], batch_id=0))
    assert obs.overlap is None
    assert not obs.defer_compute
    assert obs.instrumentation == 0.0


def test_full_overlap_measured_on_batch_one():
    controller = _controller()
    controller.observe(make_batch([1, 2], [3, 4], batch_id=0))
    obs = controller.observe(make_batch([1, 2], [3, 4], batch_id=1))
    assert obs.overlap == pytest.approx(1.0)
    assert obs.aggregating
    assert obs.defer_compute  # first batch of the aggregated pair
    assert obs.instrumentation > 0


def test_zero_overlap_keeps_aggregation_off():
    controller = _controller()
    controller.observe(make_batch([1, 2], [3, 4], batch_id=0))
    obs = controller.observe(make_batch([10, 11], [12, 13], batch_id=1))
    assert obs.overlap == pytest.approx(0.0)
    assert not obs.aggregating
    assert not obs.defer_compute


def test_partial_overlap_against_threshold():
    controller = _controller(threshold=0.5)
    controller.observe(make_batch([1, 2], [3, 4], batch_id=0))
    # Batch 1 touches {1, 2, 10, 11}: overlap = 2/4 = 0.5 >= threshold.
    obs = controller.observe(make_batch([1, 2], [10, 11], batch_id=1))
    assert obs.overlap == pytest.approx(0.5)
    assert obs.aggregating


def test_overlap_compares_against_immediately_previous_batch_only():
    controller = _controller(n=2)
    controller.observe(make_batch([1], [2], batch_id=0))
    controller.observe(make_batch([5], [6], batch_id=1))
    # Batch 2 repeats batch 0's vertices, but latest_bid for them reads 0,
    # not 1 -> they do not count as overlap with batch 1.
    obs = controller.observe(make_batch([1], [2], batch_id=2))
    assert obs.overlap == pytest.approx(0.0)


def test_defer_alternates_in_aggregation_mode():
    controller = _controller()
    controller.observe(make_batch([1, 2], [3, 4], batch_id=0))
    flags = []
    for batch_id in range(1, 6):
        obs = controller.observe(make_batch([1, 2], [3, 4], batch_id=batch_id))
        flags.append(obs.defer_compute)
    # Pairs: defer, compute, defer, compute, defer.
    assert flags == [True, False, True, False, True]


def test_flush_reports_pending_deferral():
    controller = _controller()
    controller.observe(make_batch([1, 2], [3, 4], batch_id=0))
    controller.observe(make_batch([1, 2], [3, 4], batch_id=1))  # deferred
    assert controller.flush() is True
    assert controller.flush() is False


def test_measurement_cadence_follows_n():
    controller = _controller(n=3)
    overlaps = []
    for batch_id in range(7):
        obs = controller.observe(make_batch([1, 2], [3, 4], batch_id=batch_id))
        overlaps.append(obs.overlap is not None)
    # Measured at 1 (seed), 3, 6.
    assert overlaps == [False, True, False, True, False, False, True]


def test_overlaps_recorded_for_reporting():
    controller = _controller()
    controller.observe(make_batch([1], [2], batch_id=0))
    controller.observe(make_batch([1], [2], batch_id=1))
    assert controller.overlaps == [(1, 1.0)]


def test_out_of_universe_vertex_rejected():
    """A stream vertex beyond num_vertices must fail loudly at observe(),
    not index past the per-vertex batch-id table."""
    controller = _controller(num_vertices=100)
    controller.observe(make_batch([1], [2], batch_id=0))
    with pytest.raises(ConfigurationError, match="outside"):
        controller.observe(make_batch([1], [100], batch_id=1))
    with pytest.raises(ConfigurationError, match="outside"):
        controller.observe(make_batch([250], [2], batch_id=2))


def test_negative_vertex_rejected():
    """Negative ids would silently alias real vertices via wrap-around."""
    controller = _controller(num_vertices=100)
    with pytest.raises(ConfigurationError, match="outside"):
        controller.observe(make_batch([-1], [2], batch_id=0))


def test_universe_boundary_vertex_accepted():
    controller = _controller(num_vertices=100)
    obs = controller.observe(make_batch([0], [99], batch_id=0))
    assert obs is not None


def test_degenerate_worker_and_universe_counts_rejected():
    with pytest.raises(ConfigurationError):
        OCAController(100, config=OCAConfig(), costs=CostParameters(), num_workers=0)
    with pytest.raises(ConfigurationError):
        OCAController(100, config=OCAConfig(), costs=CostParameters(), num_workers=-3)
    with pytest.raises(ConfigurationError):
        OCAController(0, config=OCAConfig(), costs=CostParameters(), num_workers=8)
