"""Named execution modes used across experiments and the CLI.

A mode names an update strategy selector; OCA is orthogonal and toggled
separately on the pipeline (the paper evaluates OCA on top of ABR+USC).

:data:`MODES` is a *live view* over the strategy registry
(:mod:`repro.update.strategies`): registering a new selector makes it a
valid mode (and CLI ``--mode`` choice) immediately, with no hand-maintained
list to update.  A few selectors are exposed under the paper's terminology
instead of their registry names: ``sw_only`` (always RO+USC), ``hw_only``
(always HAU) and ``dynamic`` (the full input-aware SW/HW proposal).
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping

from ..update.engine import UpdatePolicy
from ..update.strategies import STRATEGY_REGISTRY, resolve_strategy

__all__ = ["MODES", "MODE_ALIASES", "resolve_mode"]

#: Paper-terminology aliases -> registered selector names (Fig. 15's
#: input-oblivious comparison points and the full proposal).
MODE_ALIASES: dict[str, str] = {
    "sw_only": "always_ro_usc",
    "hw_only": "always_hau",
    "dynamic": "abr_usc_hau",
}

_ALIASED = frozenset(MODE_ALIASES.values())


def _canonical(name: str) -> str:
    return MODE_ALIASES.get(name, name)


def _mode_names() -> list[str]:
    """Every exposed mode name: aliases replace their registry targets."""
    names = [n for n in STRATEGY_REGISTRY if n not in _ALIASED]
    names.extend(MODE_ALIASES)
    return names


class _ModesView(Mapping):
    """Live mode-name -> policy mapping derived from the strategy registry.

    Values are :class:`~repro.update.engine.UpdatePolicy` members for the
    built-in selectors and plain registry names for custom ones (both are
    accepted anywhere a policy is expected).
    """

    def __iter__(self) -> Iterator[str]:
        return iter(_mode_names())

    def __len__(self) -> int:
        return len(_mode_names())

    def __getitem__(self, name: str):
        canonical = _canonical(name)
        if canonical not in STRATEGY_REGISTRY:
            raise KeyError(name)
        try:
            return UpdatePolicy(canonical)
        except ValueError:
            return canonical

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MODES({', '.join(_mode_names())})"


#: Mode name -> update policy, derived from the selector registry.
MODES: Mapping[str, UpdatePolicy | str] = _ModesView()


def resolve_mode(name: str) -> UpdatePolicy | str:
    """Map a mode name to its update policy.

    Returns the :class:`UpdatePolicy` member for built-in modes and the
    registered selector name for custom ones; both are valid ``policy``
    arguments to :class:`~repro.update.engine.UpdateEngine` and
    :class:`~repro.pipeline.runner.StreamingPipeline`.

    Raises:
        ConfigurationError: for unknown mode names.
    """
    canonical = _canonical(name)
    # Delegates validation (and the error message) to the registry.
    selector = resolve_strategy(canonical)
    try:
        return UpdatePolicy(selector.name)
    except ValueError:
        return selector.name
