"""Mesh network-on-chip model (XY routing, per-link queueing).

Task packets (Fig. 10's TaskReq messages) and data packets (cacheline
transfers) are routed XY over the 4x4 mesh.  Per-link utilization feeds an
M/D/1-style queueing term, so adding task traffic perturbs per-core average
packet latency by a few percent — the effect Fig. 20 reports (within 10%).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from .config import HAUConfig

__all__ = ["LinkLoads", "MeshNoC"]


@dataclass
class LinkLoads:
    """Flit counts per directed mesh link, accumulated over a batch."""

    #: flits[i, j] = flits sent from tile i to adjacent tile j.
    flits: np.ndarray

    def total_flits(self) -> int:
        return int(self.flits.sum())


class MeshNoC:
    """XY-routed mesh with deterministic latency plus queueing estimates."""

    def __init__(self, config: HAUConfig):
        self.config = config
        n = config.num_cores
        self._adjacent = np.zeros((n, n), dtype=bool)
        width = config.mesh_width
        for core in range(n):
            x, y = config.core_coords(core)
            for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                nx, ny = x + dx, y + dy
                if 0 <= nx < width and 0 <= ny < width:
                    self._adjacent[core, ny * width + nx] = True

    def route(self, src: int, dst: int) -> list[tuple[int, int]]:
        """The XY route as a list of directed links (tile, tile)."""
        if src == dst:
            return []
        width = self.config.mesh_width
        links = []
        x, y = self.config.core_coords(src)
        dx, dy = self.config.core_coords(dst)
        cx, cy = x, y
        while cx != dx:
            nx = cx + (1 if dx > cx else -1)
            links.append((cy * width + cx, cy * width + nx))
            cx = nx
        while cy != dy:
            ny = cy + (1 if dy > cy else -1)
            links.append((cy * width + cx, ny * width + cx))
            cy = ny
        return links

    def base_latency(self, src: int, dst: int) -> int:
        """Zero-load packet latency: hop cycles plus one serialization cycle."""
        return self.config.hops(src, dst) * self.config.hop_latency + 1

    def new_loads(self) -> LinkLoads:
        n = self.config.num_cores
        return LinkLoads(flits=np.zeros((n, n), dtype=np.float64))

    def add_traffic(
        self, loads: LinkLoads, src: int, dst: int, packets: float, flits_per_packet: int
    ) -> None:
        """Accumulate ``packets`` worth of flits along the XY route."""
        for a, b in self.route(src, dst):
            if not self._adjacent[a, b]:
                raise SimulationError(f"route produced non-adjacent link {a}->{b}")
            loads.flits[a, b] += packets * flits_per_packet

    def link_utilization(self, loads: LinkLoads, duration_cycles: float) -> np.ndarray:
        """Per-link utilization in [0, 1) given the batch duration."""
        if duration_cycles <= 0:
            raise SimulationError("duration must be positive")
        # One flit per cycle per link per direction (256-bit links carry one
        # 256-bit flit per cycle).
        return np.minimum(loads.flits / duration_cycles, 0.95)

    def average_packet_latency(
        self,
        loads: LinkLoads,
        duration_cycles: float,
        src: int,
        dst: int,
        flits_per_packet: int,
    ) -> float:
        """Expected latency of one packet under the given background load.

        Queueing per traversed link follows the M/D/1 waiting time
        ``rho / (2 * (1 - rho))`` in units of the link service time.
        """
        utilization = self.link_utilization(loads, duration_cycles)
        latency = float(self.base_latency(src, dst))
        for a, b in self.route(src, dst):
            rho = float(utilization[a, b])
            latency += rho / (2.0 * (1.0 - rho)) * flits_per_packet
        return latency
