"""Property-based tests on engine, OCA and controller invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from conftest import make_batch
from repro.compute.oca import OCAConfig, OCAController
from repro.costs import CostParameters
from repro.exec_model.machine import MachineConfig
from repro.graph.adjacency_list import AdjacencyListGraph
from repro.update.abr import ABRConfig, ABRController
from repro.update.engine import UpdateEngine, UpdatePolicy
from repro.update.result import STRATEGY_BASELINE, STRATEGY_RO, STRATEGY_RO_USC

MACHINE = MachineConfig(name="t", num_workers=8)
COSTS = CostParameters()

N = 32

edge_batches = st.lists(
    st.lists(
        st.tuples(st.integers(0, N - 1), st.integers(0, N - 1)),
        min_size=1,
        max_size=25,
    ).map(lambda es: [(u, v) for u, v in es if u != v]),
    min_size=1,
    max_size=5,
)


def _batches(edge_lists):
    batches = []
    for batch_id, edges in enumerate(edge_lists):
        if not edges:
            edges = [(0, 1)]
        batches.append(
            make_batch([e[0] for e in edges], [e[1] for e in edges],
                       batch_id=batch_id)
        )
    return batches


@given(edge_batches)
@settings(max_examples=40, deadline=None)
def test_engine_times_positive_and_alternatives_complete(edge_lists):
    engine = UpdateEngine(
        AdjacencyListGraph(N), UpdatePolicy.BASELINE, machine=MACHINE, costs=COSTS
    )
    for batch in _batches(edge_lists):
        result = engine.ingest(batch)
        assert result.time > 0
        assert set(result.alternatives) == {STRATEGY_RO, STRATEGY_RO_USC}
        assert all(v > 0 for v in result.alternatives.values())


@given(edge_batches)
@settings(max_examples=40, deadline=None)
def test_perfect_abr_lower_bounds_pure_policies(edge_lists):
    """Per batch, the oracle's pick never exceeds either pure strategy."""
    engine = UpdateEngine(
        AdjacencyListGraph(N), UpdatePolicy.PERFECT_ABR, machine=MACHINE, costs=COSTS
    )
    for batch in _batches(edge_lists):
        result = engine.ingest(batch)
        all_times = dict(result.alternatives)
        all_times[result.strategy] = result.time
        assert result.time <= all_times[STRATEGY_BASELINE] + 1e-9
        assert result.time <= all_times[STRATEGY_RO] + 1e-9


@given(edge_batches)
@settings(max_examples=40, deadline=None)
def test_graph_state_independent_of_policy(edge_lists):
    edges_a = AdjacencyListGraph(N)
    edges_b = AdjacencyListGraph(N)
    engine_a = UpdateEngine(edges_a, UpdatePolicy.BASELINE, machine=MACHINE)
    engine_b = UpdateEngine(edges_b, UpdatePolicy.ALWAYS_RO_USC, machine=MACHINE)
    for batch in _batches(edge_lists):
        engine_a.ingest(batch)
        engine_b.ingest(batch)
    assert edges_a.num_edges == edges_b.num_edges
    out_a, __ = edges_a.adjacency_views()
    out_b, __ = edges_b.adjacency_views()
    assert out_a == out_b


@given(st.lists(st.booleans(), min_size=2, max_size=30), st.integers(2, 8))
@settings(max_examples=60, deadline=None)
def test_oca_never_defers_twice_in_a_row(high_overlap_flags, n):
    controller = OCAController(
        100, config=OCAConfig(overlap_threshold=0.5, n=n), num_workers=8
    )
    previous_deferred = False
    for batch_id, high in enumerate(high_overlap_flags):
        vertices = [1, 2, 3] if high else [batch_id * 3 % 97, batch_id * 3 % 97 + 1]
        batch = make_batch(vertices, [(v + 50) % 100 for v in vertices],
                           batch_id=batch_id)
        observation = controller.observe(batch)
        if previous_deferred:
            assert not observation.defer_compute
        previous_deferred = observation.defer_compute


@given(st.integers(1, 12), st.integers(1, 40))
@settings(max_examples=50, deadline=None)
def test_abr_active_cadence_property(n, num_batches):
    controller = ABRController(ABRConfig(n=n, lam=4, threshold=5.0), COSTS, 8)
    graph = AdjacencyListGraph(N)
    actives = []
    for batch_id in range(num_batches):
        stats = graph.apply_batch(
            make_batch([batch_id % N], [(batch_id + 1) % N], batch_id=batch_id)
        )
        actives.append(controller.step(stats).active)
    expected = [batch_id % n == 0 for batch_id in range(num_batches)]
    assert actives == expected


@given(edge_batches)
@settings(max_examples=30, deadline=None)
def test_usc_never_slower_than_reorder_by_much(edge_lists):
    """USC's only extra cost over RO is hash prep: bounded overhead."""
    engine = UpdateEngine(
        AdjacencyListGraph(N), UpdatePolicy.BASELINE, machine=MACHINE, costs=COSTS
    )
    for batch in _batches(edge_lists):
        result = engine.ingest(batch)
        usc = result.alternatives[STRATEGY_RO_USC]
        reorder = result.alternatives[STRATEGY_RO]
        assert usc <= reorder * 1.25 + 1000.0
