"""Selectable adjacency-format registry.

Two interchangeable substrates implement the batch-update graph protocol:

* ``"dict"`` — :class:`~repro.graph.adjacency_list.AdjacencyListGraph`,
  per-vertex Python dicts (the historical default);
* ``"hybrid"`` — :class:`~repro.graph.hybrid.HybridAdjacencyGraph`,
  degree-adaptive pooled numpy slices with hash-dict hubs and fully
  vectorized apply/delete paths.

Both produce bit-identical :class:`~repro.graph.base.BatchUpdateStats`,
adjacency content and iteration order, so the choice is purely a
wall-clock lever.  Select per run via ``RunConfig.adjacency`` /
``repro run --adjacency``; the ``REPRO_ADJ_FORMAT`` environment variable
supplies the default when no explicit choice is made (benchmark harnesses
use it to sweep formats without touching configs).
"""

from __future__ import annotations

import os

from ..errors import ConfigurationError
from .adjacency_list import AdjacencyListGraph
from .hybrid import HybridAdjacencyGraph

__all__ = [
    "ADJACENCY_FORMATS",
    "DEFAULT_ADJACENCY",
    "make_adjacency_graph",
    "resolve_adjacency_format",
]

ADJACENCY_FORMATS: dict[str, type] = {
    "dict": AdjacencyListGraph,
    "hybrid": HybridAdjacencyGraph,
}

DEFAULT_ADJACENCY = "dict"

_ENV_VAR = "REPRO_ADJ_FORMAT"


def resolve_adjacency_format(name: str | None = None) -> str:
    """Resolve an adjacency-format choice to a registry key.

    An explicit ``name`` wins; otherwise ``REPRO_ADJ_FORMAT`` is consulted,
    falling back to :data:`DEFAULT_ADJACENCY`.  Unknown names raise
    :class:`~repro.errors.ConfigurationError`.
    """
    if not name:
        name = os.environ.get(_ENV_VAR, "").strip() or DEFAULT_ADJACENCY
    if name not in ADJACENCY_FORMATS:
        raise ConfigurationError(
            f"adjacency format must be one of {sorted(ADJACENCY_FORMATS)}, "
            f"got {name!r}"
        )
    return name


def make_adjacency_graph(
    name: str | None, num_vertices: int, telemetry=None
):
    """Construct the named adjacency graph over ``num_vertices`` ids.

    ``telemetry`` is forwarded to formats that can use it (the hybrid
    format records promotion/demotion counters and apply spans); the dict
    format ignores it.
    """
    resolved = resolve_adjacency_format(name)
    if resolved == "hybrid":
        return HybridAdjacencyGraph(num_vertices, telemetry=telemetry)
    return AdjacencyListGraph(num_vertices)
