"""Extensibility: algorithms and update strategies plug in from user code.

The acceptance bar for the registries: a new compute algorithm and a new
update strategy must be registrable *from test code* — no edits to
``pipeline/runner.py`` or ``update/engine.py`` — and immediately usable as
pipeline/engine/CLI names.  Registrations here are removed again on
teardown so the live views (``ALGORITHMS``, ``MODES``) return to their
built-in state.
"""

import pytest

from repro.cli import build_parser
from repro.compute.registry import (
    ALGORITHM_REGISTRY,
    ALGORITHMS,
    ComputeAlgorithm,
    algorithm_names,
    get_algorithm,
    register_algorithm,
)
from repro.compute.result import ComputeCounters
from repro.errors import ConfigurationError
from repro.graph.adjacency_list import AdjacencyListGraph
from repro.pipeline.config import RunConfig
from repro.pipeline.modes import MODE_ALIASES, MODES
from repro.pipeline.runner import StreamingPipeline
from repro.update.engine import UpdateEngine, UpdatePolicy
from repro.update.result import STRATEGY_BASELINE, STRATEGY_RO
from repro.update.strategies import (
    STRATEGY_REGISTRY,
    StrategySelector,
    register_strategy,
    resolve_strategy,
    strategy_names,
)


@pytest.fixture
def touch_counter_algorithm():
    """A custom algorithm registered for the duration of one test."""

    @register_algorithm("touch_counter")
    class TouchCounter(ComputeAlgorithm):
        """Counts affected vertices each round — one iteration, no edges."""

        instances = []

        def __init__(self, ctx):
            super().__init__(ctx)
            self.rounds = []
            TouchCounter.instances.append(self)

        def on_round(self, batch, affected, covered):
            self.rounds.append((batch.batch_id, len(covered)))
            return ComputeCounters(
                iterations=1, touched_vertices=len(affected), touched_edges=0
            )

    yield TouchCounter
    del ALGORITHM_REGISTRY["touch_counter"]


@pytest.fixture
def parity_selector():
    """A custom update strategy registered for the duration of one test."""

    @register_strategy
    class ParitySelector(StrategySelector):
        name = "parity"

        def select(self, engine, stats, timings):
            chosen = STRATEGY_RO if stats.batch_id % 2 else STRATEGY_BASELINE
            return chosen, None

    yield ParitySelector
    del STRATEGY_REGISTRY["parity"]


# -- compute-algorithm registry -----------------------------------------------

def test_builtin_algorithms_registered_in_order():
    assert tuple(ALGORITHMS) == (
        "pr", "sssp", "pr_static", "sssp_static", "bfs", "cc", "none",
        "triangles",
    )
    assert algorithm_names() == tuple(ALGORITHMS)


def test_unknown_algorithm_rejected():
    with pytest.raises(ConfigurationError):
        get_algorithm("nope")


def test_custom_algorithm_drives_pipeline(flat_profile, touch_counter_algorithm):
    assert "touch_counter" in ALGORITHMS  # live view picked it up
    pipeline = StreamingPipeline(
        flat_profile, 300, "touch_counter", UpdatePolicy.BASELINE
    )
    metrics = pipeline.run(3)
    instance = touch_counter_algorithm.instances[-1]
    assert [bid for bid, __ in instance.rounds] == [0, 1, 2]
    assert all(b.compute_time > 0 for b in metrics.batches)


def test_custom_algorithm_usable_via_run_config(flat_profile, touch_counter_algorithm):
    config = RunConfig("custom", 300, algorithm="touch_counter",
                       mode="baseline", num_batches=2)
    metrics = config.build_pipeline(profile=flat_profile).run(2)
    assert len(metrics.batches) == 2


# -- update-strategy registry -------------------------------------------------

def test_builtin_strategies_cover_update_policies():
    assert {p.value for p in UpdatePolicy} <= set(strategy_names())


def test_custom_strategy_drives_engine(parity_selector):
    graph = AdjacencyListGraph(64)
    engine = UpdateEngine(graph, "parity")
    assert engine.policy is None  # not one of the paper's enum policies
    assert engine.policy_name == "parity"
    assert resolve_strategy("parity") is STRATEGY_REGISTRY["parity"]


def test_custom_strategy_drives_pipeline(flat_profile, parity_selector):
    assert "parity" in MODES  # live view picked it up
    metrics = StreamingPipeline(flat_profile, 250, "none", "parity").run(4)
    assert metrics.mode == "parity"
    assert [b.strategy for b in metrics.batches] == [
        STRATEGY_BASELINE, STRATEGY_RO, STRATEGY_BASELINE, STRATEGY_RO,
    ]


def test_hau_strategy_without_simulator_rejected():
    graph = AdjacencyListGraph(64)
    with pytest.raises(ConfigurationError):
        UpdateEngine(graph, UpdatePolicy.ALWAYS_HAU)


# -- CLI consistency: choices derive from the registries ----------------------

def _argument_choices(parser, command, option):
    run = next(
        action for action in parser._subparsers._group_actions[0].choices.items()
        if action[0] == command
    )[1]
    return next(
        a.choices for a in run._actions
        if option in getattr(a, "option_strings", ())
        or getattr(a, "dest", None) == option
    )


def test_cli_algorithm_choices_are_the_registry():
    choices = _argument_choices(build_parser(), "run", "--algorithm")
    assert list(choices) == list(ALGORITHMS)


def test_cli_mode_choices_are_the_registry():
    choices = _argument_choices(build_parser(), "run", "--mode")
    assert sorted(choices) == sorted(MODES)
    assert set(MODE_ALIASES) <= set(choices)


def test_cli_choices_track_new_registrations(
    touch_counter_algorithm, parity_selector
):
    parser = build_parser()
    assert "touch_counter" in _argument_choices(parser, "run", "--algorithm")
    assert "parity" in _argument_choices(parser, "run", "--mode")
