"""Declarative run construction: :class:`RunConfig` and its factory.

Every knob of :class:`~repro.pipeline.runner.StreamingPipeline` — dataset,
batch size, algorithm, mode, OCA, machine, cost models, convergence
settings — in one frozen, picklable dataclass with a JSON round-trip.  All
run construction in the repo (CLI, the parallel executor's workers,
benchmarks, examples) goes through :meth:`RunConfig.build_pipeline`, so a
run is describable as data: serialize it, ship it to a worker process,
store it next to results, rebuild the identical pipeline later.

    config = RunConfig(dataset="wiki", batch_size=10_000, mode="abr_usc")
    metrics = config.build_pipeline().run(config.num_batches)
    restored = RunConfig.from_json(config.to_json())   # == config
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..compute.oca import OCAConfig
from ..compute.registry import get_algorithm
from ..costs import ComputeCostParameters, CostParameters
from ..errors import ConfigurationError
from ..exec_model.machine import HOST_MACHINE, SIMULATED_MACHINE, MachineConfig
from ..graph.formats import ADJACENCY_FORMATS, resolve_adjacency_format
from ..telemetry.core import TELEMETRY_LEVELS, make_telemetry
from ..update.abr import ABRConfig
from ..update.strategies import resolve_strategy
from .modes import resolve_mode
from .partition import PARTITION_POLICIES
from .transport import SHARD_TRANSPORTS, resolve_shard_transport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..datasets.profiles import DatasetProfile
    from .executor import CellSpec
    from .runner import StreamingPipeline

__all__ = ["RunConfig", "MACHINE_NAMES"]

#: Named machines ``RunConfig.machine`` may reference.  ``"auto"`` resolves
#: to the simulated CMP for HAU-capable modes (Table 3's normalization) and
#: the evaluation host otherwise.
MACHINE_NAMES: dict[str, MachineConfig] = {
    "host": HOST_MACHINE,
    "simulated": SIMULATED_MACHINE,
}

_NESTED_FIELDS: dict[str, type] = {
    "costs": CostParameters,
    "compute_costs": ComputeCostParameters,
    "abr": ABRConfig,
    "oca": OCAConfig,
}


@dataclass(frozen=True)
class RunConfig:
    """Everything needed to (re)construct one pipeline run, as plain data.

    Attributes:
        dataset: dataset profile name (see ``repro datasets``).
        batch_size: edges per input batch.
        algorithm: registered compute-algorithm name.
        mode: execution mode / update-strategy name (see
            :data:`~repro.pipeline.modes.MODES`).
        use_oca: enable overlap-based compute aggregation.
        machine: ``"auto"``, ``"host"`` or ``"simulated"``.
        seed: stream generator seed.
        num_batches: batches to stream (None = the profile's full stream).
        pr_tolerance / pr_max_rounds: PageRank convergence settings.
        sssp_source: SSSP/BFS source vertex (None = first batch's first
            source endpoint).
        costs / compute_costs: cost-model overrides (None = defaults).
        abr / oca: ABR / OCA parameter overrides (None = defaults).
        telemetry: instrumentation level — ``"off"`` (no-op backend),
            ``"basic"`` (counters/gauges/decision ledger) or ``"full"``
            (adds wall-clock spans and histograms).
        num_shards: vertex-partitioned shard worker processes the single
            run's update phase fans out over (1 = serial in-process; see
            :mod:`repro.pipeline.sharding`).  Results are bit-identical at
            any shard count.
        shard_transport: how the coordinator reaches its shard workers —
            ``"inproc"`` (same-process), ``"shm"`` (pipes + SharedMemory,
            default) or ``"tcp"`` (length-prefixed sockets); see
            :data:`~repro.pipeline.transport.SHARD_TRANSPORTS`.  Ignored
            when ``num_shards == 1``; results are bit-identical across
            transports.
        shard_policy: vertex-placement policy materializing the owner map
            — ``"mod"`` (the paper's §4.4 mapping, default), ``"hash"`` or
            ``"greedy"``; see
            :data:`~repro.pipeline.partition.PARTITION_POLICIES`.  Ignored
            when ``num_shards == 1``; results are bit-identical across
            policies (placement trades communication, never correctness).
        adjacency: adjacency-format name (see
            :data:`~repro.graph.formats.ADJACENCY_FORMATS`) — ``"dict"``
            per-vertex dicts or ``"hybrid"`` degree-adaptive pooled
            arrays.  Results are bit-identical across formats; only
            wall-clock changes.
    """

    dataset: str
    batch_size: int
    algorithm: str = "pr"
    mode: str = "abr_usc"
    use_oca: bool = False
    machine: str = "auto"
    seed: int = 7
    num_batches: int | None = None
    pr_tolerance: float = 1e-7
    pr_max_rounds: int = 100
    sssp_source: int | None = None
    costs: CostParameters | None = None
    compute_costs: ComputeCostParameters | None = None
    abr: ABRConfig | None = None
    oca: OCAConfig | None = None
    telemetry: str = "off"
    num_shards: int = 1
    adjacency: str = "dict"
    shard_transport: str = "shm"
    shard_policy: str = "mod"

    def __post_init__(self) -> None:
        get_algorithm(self.algorithm)  # raises ConfigurationError if unknown
        resolve_mode(self.mode)
        if self.telemetry not in TELEMETRY_LEVELS:
            raise ConfigurationError(
                f"telemetry must be one of {TELEMETRY_LEVELS}, "
                f"got {self.telemetry!r}"
            )
        if self.machine not in MACHINE_NAMES and self.machine != "auto":
            raise ConfigurationError(
                f"machine must be 'auto' or one of {sorted(MACHINE_NAMES)}, "
                f"got {self.machine!r}"
            )
        if self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if self.num_shards < 1:
            # 0 would otherwise survive until the owner map is materialized
            # (ZeroDivisionError) deep inside pipeline construction.
            raise ConfigurationError(
                f"num_shards must be >= 1, got {self.num_shards}"
            )
        if self.adjacency not in ADJACENCY_FORMATS:
            raise ConfigurationError(
                f"adjacency must be one of {sorted(ADJACENCY_FORMATS)}, "
                f"got {self.adjacency!r}"
            )
        if self.shard_transport not in SHARD_TRANSPORTS:
            raise ConfigurationError(
                f"shard_transport must be one of {sorted(SHARD_TRANSPORTS)}, "
                f"got {self.shard_transport!r}"
            )
        if self.shard_policy not in PARTITION_POLICIES:
            raise ConfigurationError(
                f"shard_policy must be one of {sorted(PARTITION_POLICIES)}, "
                f"got {self.shard_policy!r}"
            )

    # -- derived views --------------------------------------------------------
    @property
    def requires_hau(self) -> bool:
        """True if this config's mode offloads batches to the accelerator."""
        return resolve_strategy(resolve_mode(self.mode)).requires_hau

    def resolved_machine(self) -> MachineConfig:
        """The machine the run executes on (``"auto"`` resolved)."""
        if self.machine == "auto":
            return SIMULATED_MACHINE if self.requires_hau else HOST_MACHINE
        return MACHINE_NAMES[self.machine]

    # -- serialization --------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data form (nested config dataclasses become dicts)."""
        out = dataclasses.asdict(self)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "RunConfig":
        """Inverse of :meth:`to_dict`; validates like the constructor."""
        kwargs = dict(data)
        for name, config_cls in _NESTED_FIELDS.items():
            value = kwargs.get(name)
            if isinstance(value, dict):
                kwargs[name] = config_cls(**value)
        return cls(**kwargs)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "RunConfig":
        return cls.from_dict(json.loads(payload))

    # -- interop --------------------------------------------------------------
    @classmethod
    def from_cli_args(cls, args, dataset: str | None = None) -> "RunConfig":
        """Build a config from ``repro run`` argparse arguments."""
        return cls(
            dataset=dataset if dataset is not None else args.dataset[0],
            batch_size=args.batch_size,
            algorithm=args.algorithm,
            mode=args.mode,
            use_oca=args.oca,
            num_batches=args.num_batches,
            telemetry=getattr(args, "telemetry", None) or "off",
            num_shards=getattr(args, "shards", None) or 1,
            adjacency=resolve_adjacency_format(
                getattr(args, "adjacency", None)
            ),
            shard_transport=resolve_shard_transport(
                getattr(args, "shard_transport", None)
            ),
            shard_policy=getattr(args, "shard_policy", None) or "mod",
        )

    @classmethod
    def from_serve_args(cls, args) -> "RunConfig":
        """Build the open-ended live-ingest config for ``repro serve``.

        Serving has no pre-materialized workload: ``num_batches`` stays
        None and the profile's stream generator is never consulted — the
        service feeds externally built batches through
        :meth:`~repro.pipeline.runner.StreamingPipeline.step`'s ``batch``
        argument.  The dataset only contributes the vertex universe (and
        the partition-policy stream sample for sharded serving).
        """
        return cls(
            dataset=args.dataset,
            batch_size=args.batch_size,
            algorithm=args.algorithm,
            mode=args.mode,
            num_batches=None,
            telemetry=getattr(args, "telemetry", None) or "basic",
            num_shards=getattr(args, "shards", None) or 1,
            adjacency=resolve_adjacency_format(
                getattr(args, "adjacency", None)
            ),
            shard_transport=resolve_shard_transport(
                getattr(args, "shard_transport", None)
            ),
            shard_policy=getattr(args, "shard_policy", None) or "mod",
        )

    @classmethod
    def from_cell_spec(cls, spec: "CellSpec") -> "RunConfig":
        """Lift a workload-matrix cell spec into a full run config."""
        return cls(
            dataset=spec.dataset,
            batch_size=spec.batch_size,
            algorithm=spec.algorithm,
            mode=spec.mode,
            use_oca=spec.use_oca,
            num_batches=spec.num_batches,
            seed=spec.seed,
        )

    def to_cell_spec(self) -> "CellSpec":
        """Project onto the workload-matrix cell spec (extras dropped)."""
        from .executor import CellSpec

        return CellSpec(
            dataset=self.dataset,
            batch_size=self.batch_size,
            algorithm=self.algorithm,
            mode=self.mode,
            use_oca=self.use_oca,
            num_batches=self.num_batches,
            seed=self.seed,
        )

    # -- factory --------------------------------------------------------------
    def build_pipeline(
        self,
        profile: "DatasetProfile | None" = None,
        graph=None,
        hau=None,
        trace=None,
        telemetry=None,
    ) -> "StreamingPipeline":
        """Construct the configured :class:`StreamingPipeline`.

        Args:
            profile: dataset profile override (defaults to resolving
                :attr:`dataset` by name — pass one for custom datasets).
            graph: pre-built graph to reuse.
            hau: accelerator simulator override; HAU-capable modes get a
                fresh default :class:`~repro.hau.simulator.HAUSimulator`
                automatically when omitted.
            trace: optional :class:`~repro.pipeline.tracing.TraceWriter`.
            telemetry: explicit telemetry backend override; by default a
                backend is created from the config's :attr:`telemetry`
                level via :func:`~repro.telemetry.core.make_telemetry`.
        """
        from ..datasets.profiles import get_dataset
        from .runner import StreamingPipeline

        if profile is None:
            profile = get_dataset(self.dataset)
        if hau is None and self.requires_hau:
            from ..hau.simulator import HAUSimulator

            hau = HAUSimulator()
        if telemetry is None:
            telemetry = make_telemetry(self.telemetry)
        kwargs = {}
        if self.costs is not None:
            kwargs["costs"] = self.costs
        if self.compute_costs is not None:
            kwargs["compute_costs"] = self.compute_costs
        pipeline_cls = StreamingPipeline
        if self.num_shards > 1:
            from .sharding import ShardedPipeline

            pipeline_cls = ShardedPipeline
            kwargs["num_shards"] = self.num_shards
            kwargs["shard_transport"] = self.shard_transport
            kwargs["shard_policy"] = self.shard_policy
        kwargs["adjacency"] = self.adjacency
        pipeline = pipeline_cls(
            profile,
            self.batch_size,
            algorithm=self.algorithm,
            policy=resolve_mode(self.mode),
            use_oca=self.use_oca,
            machine=self.resolved_machine(),
            abr_config=self.abr,
            oca_config=self.oca,
            hau=hau,
            graph=graph,
            seed=self.seed,
            pr_tolerance=self.pr_tolerance,
            pr_max_rounds=self.pr_max_rounds,
            sssp_source=self.sssp_source,
            trace=trace,
            telemetry=telemetry,
            **kwargs,
        )
        # Checkpoints embed the originating config so resume can reject a
        # pipeline built under different parameters.
        pipeline.run_config = self
        return pipeline

    def run(self, num_batches: int | None = None):
        """Build the pipeline and run it (``num_batches`` overrides the
        config's); returns the run's RunMetrics."""
        pipeline = self.build_pipeline()
        try:
            return pipeline.run(
                self.num_batches if num_batches is None else num_batches
            )
        finally:
            close = getattr(pipeline, "close", None)
            if close is not None:  # sharded pipelines own worker processes
                close()
