"""Sharded single-run execution: vertex-partitioned update across processes.

The paper's HAU eliminates update locks by routing every update task to core
``src mod N`` (Section 4.4): tasks that touch the same vertex land on the
same core, so no two cores ever write the same adjacency.  This module lifts
that owner mapping from the simulated CMP to real OS processes, so one
pipeline run's *update phase* — the real data-structure work in this library
(DESIGN.md §2) — fans out over ``num_shards`` persistent workers:

* shard ``k`` owns every vertex ``v`` with ``v % num_shards == k`` and holds
  the full out-adjacency of its sources and the full in-adjacency of its
  destinations — the two directions of one edge generally live on different
  shards, exactly like the HAU's per-direction task routing;
* each batch ships to the workers once (one shared-memory block where the
  platform provides :mod:`multiprocessing.shared_memory`, an inline pickle
  otherwise) and every worker slices out its own edges with a ``% N`` mask —
  zero coordinator-side partitioning work, lock-free by construction;
* per-shard :class:`~repro.graph.base.DirectionStats` merge back into the
  exact arrays the serial graph would have produced (the vertex partition is
  disjoint, so a concatenate + stable argsort *is* the serial sort order),
  which makes every downstream modeled-time figure bit-identical;
* compute stays serial on the coordinator: algorithm semantics (PageRank's
  within-round float accumulation, CC's union-find operation counts) are
  order-sensitive, so the coordinator reads adjacency through a lazily
  mirrored view instead of re-deriving results from per-shard partials.
  Updates parallelize; compute reads parity-exact state.

The hard invariant: a run at any ``num_shards`` produces algorithm results
and :class:`~repro.pipeline.metrics.RunMetrics` bit-identical to
``num_shards=1`` (enforced by ``tests/test_sharding.py`` against the golden
parity oracle).

Environment knobs:

* ``REPRO_MP_START`` — start method for shard workers (see
  :func:`~repro.pipeline.executor.mp_context`);
* ``REPRO_SHARD_SHM`` — set to ``0`` to force the inline pipe transport
  even where shared memory is available;
* ``REPRO_CELL_TIMEOUT`` — seconds the coordinator waits on a shard reply
  before declaring the worker hung (unset/0 = wait forever), shared with
  the matrix executor.
"""

from __future__ import annotations

import os
import pickle

import numpy as np

from ..errors import ConfigurationError, GraphError
from ..graph.adjacency_list import AdjacencyListGraph, _empty_direction_stats
from ..graph.base import BatchUpdateStats, DirectionStats, DynamicGraph
from ..graph.formats import make_adjacency_graph, resolve_adjacency_format
from ..telemetry.core import as_telemetry, make_telemetry, merge_snapshots
from .executor import CellExecutionError, _env_float, mp_context
from .runner import StreamingPipeline

__all__ = ["ShardedGraph", "ShardedPipeline", "shard_owner"]

try:  # pragma: no cover - availability probe
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platforms without shm
    _shared_memory = None


def shard_owner(vertices: np.ndarray, num_shards: int) -> np.ndarray:
    """Owner shard of each vertex — the paper's ``v mod N`` mapping."""
    return vertices % num_shards


def _shm_enabled() -> bool:
    return (
        _shared_memory is not None
        and os.environ.get("REPRO_SHARD_SHM", "1").strip() != "0"
    )


# -- batch transport ---------------------------------------------------------
#
# One batch becomes five flat arrays (insert src/dst/weight, delete src/dst).
# The shm path writes them back to back into a single segment and ships only
# the segment name + lengths; workers rebuild zero-copy views and slice out
# their own edges.  The inline path pickles the arrays through the pipe.

_INT = np.dtype(np.int64)
_FLT = np.dtype(np.float64)


def _pack_shm(arrays):
    """Write the five batch arrays into one fresh shared-memory block."""
    total = sum(arr.nbytes for arr in arrays)
    shm = _shared_memory.SharedMemory(create=True, size=total)
    offset = 0
    for arr in arrays:
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=offset)
        view[:] = arr
        offset += arr.nbytes
    return shm


def _attach_shm(name):
    """Attach to a coordinator-owned segment without tracker side effects.

    On Python < 3.13 attaching registers the segment with a resource
    tracker, which is wrong either way the worker was started: a spawned
    worker's own tracker would unlink the segment (and warn) when the
    worker exits, and a forked worker shares the coordinator's tracker, so
    an unregister-after-attach would cancel the owner's registration
    instead.  Suppress the registration entirely — only the coordinator,
    which created the segment, tracks its lifetime.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return _shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _unpack_shm(shm, n_ins: int, n_del: int):
    """Rebuild the five arrays as views over an attached segment."""
    buf = shm.buf
    offset = 0
    out = []
    for count, dtype in (
        (n_ins, _INT), (n_ins, _INT), (n_ins, _FLT), (n_del, _INT), (n_del, _INT),
    ):
        out.append(np.ndarray((count,), dtype=dtype, buffer=buf, offset=offset))
        offset += count * dtype.itemsize
    return out


# -- worker side -------------------------------------------------------------


def _slice_batch(arrays, shard: int, num_shards: int):
    """Cut one shard's slices out of the five batch arrays.

    Boolean-mask indexing *copies*, so the slices outlive any shared-memory
    views behind ``arrays``; masks preserve batch order, which per-vertex
    dict insertion-order parity depends on.  Out-direction slices are keyed
    by source, in-direction slices by destination — one edge's two
    directions generally route to two different shards.
    """
    ins_src, ins_dst, ins_w, del_src, del_dst = arrays
    out_pick = ins_src % num_shards == shard
    in_pick = ins_dst % num_shards == shard
    dout_pick = del_src % num_shards == shard
    din_pick = del_dst % num_shards == shard
    return (
        (ins_src[out_pick], ins_dst[out_pick], ins_w[out_pick]),
        (ins_dst[in_pick], ins_src[in_pick], ins_w[in_pick]),
        (del_src[dout_pick], del_dst[dout_pick]),
        (del_dst[din_pick], del_src[din_pick]),
    )


def _worker_apply(graph, shard, num_shards, payload, tel):
    """Apply this shard's slice of one batch; reply with stats + updates."""
    if "shm" in payload:
        shm = _attach_shm(payload["shm"])
        arrays = None
        try:
            arrays = _unpack_shm(shm, payload["n_ins"], payload["n_del"])
            slices = _slice_batch(arrays, shard, num_shards)
        finally:
            # Drop the zero-copy views before close(); a live export would
            # make releasing the segment's buffer fail.
            arrays = None  # noqa: F841
            shm.close()
    else:
        slices = _slice_batch(payload["inline"], shard, num_shards)
    (out_keys, out_vals, out_w), (in_keys, in_vals, in_w), dout, din = slices

    out_stats = graph.apply_direction_edges(out_keys, out_vals, out_w, direction="out")
    in_stats = graph.apply_direction_edges(in_keys, in_vals, in_w, direction="in")
    removed_out = graph.delete_direction_edges(dout[0], dout[1], direction="out")
    removed_in = graph.delete_direction_edges(din[0], din[1], direction="in")
    deleted = sum(removed_out.values())
    # Tracking exists here only to keep the worker on the tracked apply
    # path (its per-vertex dict order differs from the fast path's); the
    # coordinator rebuilds snapshots from scratch, so drop the journal
    # rather than let it accumulate across batches.
    graph.consume_delta()

    updated_out = updated_in = None
    if payload["include_updates"]:
        touched_out = set(out_stats.vertices.tolist())
        touched_out.update(removed_out)
        touched_in = set(in_stats.vertices.tolist())
        touched_in.update(removed_in)
        updated_out = {v: graph.out_neighbors(v) for v in sorted(touched_out)}
        updated_in = {v: graph.in_neighbors(v) for v in sorted(touched_in)}

    if tel.enabled:
        tel.count("shard.batches")
        tel.count("shard.out_edges", len(out_keys))
        tel.count("shard.in_edges", len(in_keys))
        if len(out_stats.new_edges):
            tel.count("shard.new_edges", int(out_stats.new_edges.sum()))
        if deleted:
            tel.count("shard.deleted_edges", deleted)
    return (out_stats, in_stats, deleted, updated_out, updated_in)


def _shard_worker_main(
    shard, num_shards, num_vertices, telemetry_level, conn, adjacency="dict"
):
    """Shard worker process: owns one partition's adjacency, serves commands.

    Module-level so the ``spawn`` start method can import it.  Protocol: the
    coordinator sends ``(command, payload)`` tuples, the worker replies
    ``("ok", result)`` or ``("error", (type_name, message))``; exceptions
    never cross the pipe as live objects (arbitrary tracebacks may not
    unpickle in the parent).
    """
    tel = make_telemetry(telemetry_level)
    graph = make_adjacency_graph(adjacency, num_vertices, telemetry=tel)
    while True:
        try:
            command, payload = conn.recv()
        except EOFError:  # coordinator vanished; nothing left to serve
            break
        try:
            if command == "apply":
                reply = _worker_apply(graph, shard, num_shards, payload, tel)
            elif command == "fetch":
                direction, vertices = payload
                adjacency_of = (
                    graph.out_neighbors if direction == "out" else graph.in_neighbors
                )
                if tel.enabled:
                    tel.count("shard.fetches")
                    tel.count("shard.fetched_vertices", len(vertices))
                reply = {v: adjacency_of(v) for v in vertices}
            elif command == "state":
                reply = pickle.dumps(graph, protocol=pickle.HIGHEST_PROTOCOL)
            elif command == "restore":
                graph = pickle.loads(payload)
                if graph.num_vertices != num_vertices:
                    raise GraphError(
                        f"restored shard graph has {graph.num_vertices} "
                        f"vertices, worker was spawned for {num_vertices}"
                    )
                reply = None
            elif command == "track":
                graph.track_deltas(bool(payload))
                reply = None
            elif command == "telemetry":
                reply = tel.snapshot()
            elif command == "close":
                conn.send(("ok", None))
                break
            else:
                raise GraphError(f"unknown shard command {command!r}")
        except Exception as exc:
            conn.send(("error", (type(exc).__name__, str(exc))))
            continue
        conn.send(("ok", reply))
    conn.close()


# -- coordinator side --------------------------------------------------------


def _merge_direction(parts) -> DirectionStats:
    """Merge disjoint per-shard stats into the serial direction stats.

    Every shard reports sorted vertices and the partition is disjoint, so a
    stable argsort of the concatenation reproduces the serial (globally
    sorted) order exactly; the per-vertex columns ride along unchanged.
    """
    parts = [p for p in parts if len(p.vertices)]
    if not parts:
        return _empty_direction_stats()
    if len(parts) == 1:
        return parts[0]
    vertices = np.concatenate([p.vertices for p in parts])
    order = np.argsort(vertices, kind="stable")
    return DirectionStats(
        vertices=vertices[order],
        batch_degree=np.concatenate([p.batch_degree for p in parts])[order],
        length_before=np.concatenate([p.length_before for p in parts])[order],
        new_edges=np.concatenate([p.new_edges for p in parts])[order],
    )


class _ShardAdjacencyView:
    """Read-only mapping view over one direction of a :class:`ShardedGraph`.

    Looks like the dict the serial graph hands out — same outer key
    *insertion order* (CC's rebuild iterates it), same inner dict order
    (cached dicts are byte-for-byte copies of the owning worker's) — but
    materializes adjacencies lazily from the owner shard on first access.
    """

    __slots__ = ("_graph", "_direction")

    def __init__(self, graph: "ShardedGraph", direction: str):
        self._graph = graph
        self._direction = direction

    def _order(self):
        g = self._graph
        return g._key_order_out if self._direction == "out" else g._key_order_in

    def _keys(self):
        g = self._graph
        return g._key_set_out if self._direction == "out" else g._key_set_in

    def __len__(self) -> int:
        return len(self._order())

    def __contains__(self, v) -> bool:
        return v in self._keys()

    def __iter__(self):
        return iter(self._order())

    def __getitem__(self, v):
        if v not in self._keys():
            raise KeyError(v)
        return self._graph._adjacency_of(self._direction, v)

    def get(self, v, default=None):
        if v not in self._keys():
            return default
        return self._graph._adjacency_of(self._direction, v)

    def keys(self):
        return list(self._order())

    def items(self):
        graph, direction = self._graph, self._direction
        graph._warm(direction)
        for v in self._order():
            yield v, graph._adjacency_of(direction, v)

    def values(self):
        for _v, entry in self.items():
            yield entry


class ShardedGraph(DynamicGraph):
    """A dynamic graph whose update phase runs on ``num_shards`` processes.

    Drop-in for :class:`~repro.graph.adjacency_list.AdjacencyListGraph`
    inside a pipeline: :meth:`apply_batch` returns bit-identical
    :class:`~repro.graph.base.BatchUpdateStats` and the read accessors
    expose bit-identical adjacency (content *and* iteration order), so the
    cost models and compute algorithms cannot tell the difference.  The
    coordinator holds no authoritative adjacency — only merged bookkeeping
    (edge counts, outer-key order, a read cache) — while each worker owns
    its partition outright and applies its slices lock-free.

    Picklable for checkpoints: pickling drains each worker's graph into a
    per-shard payload; unpickling re-spawns workers lazily and pushes the
    payloads back on first use.

    Args:
        num_vertices: vertex id universe.
        num_shards: worker process count (>= 1).
        telemetry_level: level for the shard-local backends (coordinator +
            one per worker), kept separate from the pipeline's backend so
            sharding does not perturb the run's own telemetry stream; read
            the merged view with :meth:`shard_telemetry`.
        adjacency: adjacency-format name each worker builds its partition
            with (see :mod:`repro.graph.formats`); parity holds at any
            format, so this is a per-worker wall-clock lever.
    """

    def __init__(
        self,
        num_vertices: int,
        num_shards: int,
        telemetry_level: str = "off",
        adjacency: str | None = None,
    ):
        super().__init__(num_vertices)
        if num_shards < 1:
            raise ConfigurationError(
                f"num_shards must be >= 1, got {num_shards}"
            )
        self.num_shards = num_shards
        self.adjacency = resolve_adjacency_format(adjacency)
        self._tel_level = telemetry_level
        self._tel = make_telemetry(telemetry_level)
        # Outer-key bookkeeping mirroring the serial dicts: insertion order
        # (new keys arrive sorted within each batch, exactly like the serial
        # setdefault pass) and O(1) membership for negative lookups that
        # must not cross a process boundary.
        self._key_order_out: list[int] = []
        self._key_order_in: list[int] = []
        self._key_set_out: set[int] = set()
        self._key_set_in: set[int] = set()
        self._touched: set[int] = set()
        self._touched_sorted: list[int] | None = None
        # Read cache: exact copies of worker adjacency dicts.  ``_mirror``
        # flips on the first read access; from then on apply replies carry
        # the updated dicts so the cache stays coherent without re-fetching.
        self._cache_out: dict[int, dict[int, float]] = {}
        self._cache_in: dict[int, dict[int, float]] = {}
        self._mirror = False
        self._view_out = _ShardAdjacencyView(self, "out")
        self._view_in = _ShardAdjacencyView(self, "in")
        self._conns = None
        self._procs = None
        self._pending_payloads: list[bytes] | None = None
        self._track_deltas = False
        self._closed = False

    # -- worker lifecycle ---------------------------------------------------
    def _ensure_workers(self) -> None:
        if self._conns is not None:
            return
        if self._closed:
            raise GraphError("ShardedGraph has been closed")
        ctx = mp_context()
        conns, procs = [], []
        try:
            for shard in range(self.num_shards):
                parent, child = ctx.Pipe()
                proc = ctx.Process(
                    target=_shard_worker_main,
                    args=(
                        shard, self.num_shards, self.num_vertices,
                        self._tel_level, child, self.adjacency,
                    ),
                    daemon=True,
                    name=f"repro-shard-{shard}",
                )
                proc.start()
                child.close()
                conns.append(parent)
                procs.append(proc)
        except BaseException:
            for proc in procs:
                proc.terminate()
            raise
        self._conns, self._procs = conns, procs
        if self._pending_payloads is not None:
            for shard, payload in enumerate(self._pending_payloads):
                self._conns[shard].send(("restore", payload))
            for shard in range(self.num_shards):
                self._recv(shard)
            self._pending_payloads = None
        if self._track_deltas:
            for conn in self._conns:
                conn.send(("track", True))
            for shard in range(self.num_shards):
                self._recv(shard)

    def track_deltas(self, enabled: bool = True) -> None:
        """Keep the shard workers on the *tracked* apply path.

        The tracked and untracked ingest paths insert a vertex's new
        targets in different dict orders (composite-sort dedup vs raw batch
        order), so when a delta consumer attaches — ``DeltaSnapshotter``
        does this for the static-recompute algorithms — the workers must
        flip too, or their adjacency would diverge bit-for-bit from a
        tracked serial graph's.  The journal itself never crosses the pipe:
        workers drop it after every batch, :meth:`consume_delta` stays
        ``None`` (the inherited default), and snapshots rebuild from the
        coordinator's mirror.
        """
        self._track_deltas = enabled
        if self._conns is not None:
            self._request_all("track", enabled)

    def _recv(self, shard: int):
        conn = self._conns[shard]
        timeout = _env_float("REPRO_CELL_TIMEOUT", 0.0)
        try:
            if timeout > 0 and not conn.poll(timeout):
                raise CellExecutionError(
                    f"shard worker {shard} gave no reply within {timeout:g}s"
                )
            status, value = conn.recv()
        except (EOFError, OSError) as exc:
            raise CellExecutionError(
                f"shard worker {shard} died (pipe closed: {exc!r}); its "
                "partition's state is lost — resume from a checkpoint"
            ) from exc
        if status == "error":
            type_name, message = value
            raise GraphError(f"shard worker {shard} failed: {type_name}: {message}")
        return value

    def _send(self, shard: int, message) -> None:
        try:
            self._conns[shard].send(message)
        except (OSError, ValueError) as exc:
            # A killed worker surfaces as EPIPE on the *next* send; same
            # diagnosis and remedy as a recv-side death.
            raise CellExecutionError(
                f"shard worker {shard} died (pipe closed: {exc!r}); its "
                "partition's state is lost — resume from a checkpoint"
            ) from exc

    def _request_all(self, command: str, payload=None) -> list:
        """Send one command to every worker, then gather replies in order."""
        self._ensure_workers()
        for shard in range(self.num_shards):
            self._send(shard, (command, payload))
        return [self._recv(shard) for shard in range(self.num_shards)]

    def close(self) -> None:
        """Shut the shard workers down; the graph is unusable afterwards."""
        self._closed = True
        if self._conns is None:
            return
        for conn in self._conns:
            try:
                conn.send(("close", None))
            except (OSError, BrokenPipeError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5)
        for conn in self._conns:
            conn.close()
        self._conns = None
        self._procs = None

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close()
        except Exception:
            pass

    # -- checkpointing ------------------------------------------------------
    def __getstate__(self) -> dict:
        self._ensure_workers()
        payloads = self._request_all("state")
        return {
            "num_vertices": self.num_vertices,
            "num_shards": self.num_shards,
            "num_edges": self.num_edges,
            "batches_applied": self.batches_applied,
            "tel_level": self._tel_level,
            "tel": self._tel,
            "adjacency": self.adjacency,
            "key_order_out": self._key_order_out,
            "key_order_in": self._key_order_in,
            "touched": self._touched,
            "mirror": self._mirror,
            "track": self._track_deltas,
            "payloads": payloads,
        }

    def __setstate__(self, state: dict) -> None:
        self.num_vertices = state["num_vertices"]
        self.num_shards = state["num_shards"]
        self.num_edges = state["num_edges"]
        self.batches_applied = state["batches_applied"]
        self._tel_level = state["tel_level"]
        self._tel = state["tel"]
        # Checkpoints written before the format field default to dicts.
        self.adjacency = state.get("adjacency", "dict")
        self._key_order_out = state["key_order_out"]
        self._key_order_in = state["key_order_in"]
        self._key_set_out = set(self._key_order_out)
        self._key_set_in = set(self._key_order_in)
        self._touched = state["touched"]
        self._touched_sorted = None
        self._cache_out = {}
        self._cache_in = {}
        self._mirror = state["mirror"]
        self._view_out = _ShardAdjacencyView(self, "out")
        self._view_in = _ShardAdjacencyView(self, "in")
        self._conns = None
        self._procs = None
        # Worker graphs travel as opaque pickles and are pushed back into
        # freshly spawned workers on first use (worker-side telemetry resets
        # — only the coordinator backend survives a checkpoint).
        self._pending_payloads = state["payloads"]
        self._track_deltas = state["track"]
        self._closed = False

    # -- updates ------------------------------------------------------------
    def apply_batch(self, batch) -> BatchUpdateStats:
        self.check_vertices(batch.src, batch.dst)
        self._ensure_workers()
        inserts = batch.insertions
        deletes = batch.deletions
        arrays = (
            np.ascontiguousarray(inserts.src, dtype=_INT),
            np.ascontiguousarray(inserts.dst, dtype=_INT),
            np.ascontiguousarray(inserts.weight, dtype=_FLT),
            np.ascontiguousarray(deletes.src, dtype=_INT),
            np.ascontiguousarray(deletes.dst, dtype=_INT),
        )
        payload = {"include_updates": self._mirror}
        shm = None
        if _shm_enabled() and sum(arr.nbytes for arr in arrays) > 0:
            shm = _pack_shm(arrays)
            payload.update(
                shm=shm.name, n_ins=len(arrays[0]), n_del=len(arrays[3])
            )
        else:
            payload["inline"] = arrays
        try:
            replies = self._request_all("apply", payload)
        finally:
            if shm is not None:
                # Every worker has copied its slices by reply time; the
                # coordinator owns the segment's whole lifetime.
                shm.close()
                shm.unlink()
        out_stats = _merge_direction([reply[0] for reply in replies])
        in_stats = _merge_direction([reply[1] for reply in replies])
        deleted = sum(reply[2] for reply in replies)
        inserted = int(out_stats.new_edges.sum()) if len(out_stats.new_edges) else 0
        self.num_edges += inserted - deleted
        self.batches_applied += 1
        self._note_keys(
            out_stats.vertices, self._key_set_out, self._key_order_out
        )
        self._note_keys(in_stats.vertices, self._key_set_in, self._key_order_in)
        if self._mirror:
            for reply in replies:
                self._cache_out.update(reply[3])
                self._cache_in.update(reply[4])
        if self._tel.enabled:
            self._tel.count("shard.coordinator_batches")
            self._tel.count(
                "shard.shm_batches" if shm is not None else "shard.inline_batches"
            )
        return BatchUpdateStats(
            batch_id=batch.batch_id,
            batch_size=batch.size,
            out=out_stats,
            inn=in_stats,
            deleted_edges=deleted,
        )

    def _note_keys(self, vertices: np.ndarray, key_set: set, key_order: list) -> None:
        """Append this batch's new outer keys in serial insertion order.

        ``vertices`` arrives sorted, matching the order the serial graph's
        setdefault pass materializes new outer keys in.
        """
        fresh = [v for v in vertices.tolist() if v not in key_set]
        if not fresh:
            return
        key_set.update(fresh)
        key_order.extend(fresh)
        before = len(self._touched)
        self._touched.update(fresh)
        if len(self._touched) != before:
            self._touched_sorted = None

    # -- reads --------------------------------------------------------------
    def _adjacency_of(self, direction: str, v: int) -> dict[int, float]:
        """The (cached) adjacency dict of an existing outer key ``v``."""
        cache = self._cache_out if direction == "out" else self._cache_in
        entry = cache.get(v)
        if entry is None:
            self._mirror = True
            entry = self._fetch(direction, [v])[v]
            cache[v] = entry
            if self._tel.enabled:
                self._tel.count("shard.cache_misses")
        return entry

    def _fetch(self, direction: str, vertices: list) -> dict:
        """Fetch adjacency dicts from their owner shards, grouped per owner."""
        self._ensure_workers()
        by_owner: dict[int, list] = {}
        for v in vertices:
            by_owner.setdefault(v % self.num_shards, []).append(v)
        owners = sorted(by_owner)
        for owner in owners:
            self._send(owner, ("fetch", (direction, by_owner[owner])))
        fetched: dict = {}
        for owner in owners:
            fetched.update(self._recv(owner))
        return fetched

    def _warm(self, direction: str) -> None:
        """Pull every not-yet-cached adjacency of one direction at once."""
        self._mirror = True
        cache = self._cache_out if direction == "out" else self._cache_in
        order = self._key_order_out if direction == "out" else self._key_order_in
        missing = [v for v in order if v not in cache]
        if not missing:
            return
        if self._tel.enabled:
            self._tel.count("shard.cache_warms")
            self._tel.count("shard.warmed_vertices", len(missing))
        cache.update(self._fetch(direction, missing))

    def out_neighbors(self, v: int) -> dict[int, float]:
        self._mirror = True
        return self._view_out.get(v, {})

    def in_neighbors(self, v: int) -> dict[int, float]:
        self._mirror = True
        return self._view_in.get(v, {})

    def has_edge(self, u: int, v: int) -> bool:
        """True if edge u->v is currently present."""
        return v in self.out_neighbors(u)

    def edge_weight(self, u: int, v: int) -> float | None:
        """Current weight of u->v, or None if absent."""
        return self.out_neighbors(u).get(v)

    def adjacency_views(self):
        self._mirror = True
        return self._view_out, self._view_in

    def vertices_with_edges(self) -> list[int]:
        """Sorted vertices with any incident edge; pre-warms the read cache
        (snapshot construction reads every vertex right after calling this)."""
        self._warm("out")
        self._warm("in")
        if self._touched_sorted is None:
            self._touched_sorted = sorted(self._touched)
        return self._touched_sorted

    def touched_count(self) -> int:
        return len(self._touched)

    def notify_external_mutation(self) -> None:
        raise GraphError(
            "ShardedGraph adjacency views are read-only mirrors; algorithms "
            "that mutate views directly require num_shards=1"
        )

    def sum_search_cost(self, batch_degree, length_before, new_edges, per_element):
        # The modeled duplicate-check cost is a pure function of the stats;
        # delegate to the serial structure's linear-scan formula so sharded
        # runs charge identical modeled time.
        return AdjacencyListGraph.sum_search_cost(
            self, batch_degree, length_before, new_edges, per_element
        )

    # -- telemetry ----------------------------------------------------------
    def shard_telemetry(self):
        """Merged shard telemetry: coordinator backend + workers, in shard
        order (deterministic, mirroring the executor's snapshot merge)."""
        if not self._tel.enabled:
            return self._tel.snapshot()
        snapshots = [self._tel.snapshot()]
        snapshots.extend(self._request_all("telemetry"))
        return merge_snapshots(snapshots)


class ShardedPipeline(StreamingPipeline):
    """A :class:`StreamingPipeline` whose graph updates fan out over shards.

    The stage logic is inherited untouched — only the graph substrate
    changes — which is what makes sharded metrics bit-identical by
    construction.  Use as a context manager (or call :meth:`close`) so the
    shard workers shut down promptly; abandoned workers are daemons and die
    with the coordinator regardless.

    Args:
        num_shards: shard worker processes (>= 1).
        adjacency: per-worker adjacency format (see
            :mod:`repro.graph.formats`).
        (remaining arguments as :class:`StreamingPipeline`)
    """

    def __init__(self, profile, batch_size, *, num_shards, graph=None,
                 telemetry=None, adjacency=None, **kwargs):
        if graph is None:
            backend = as_telemetry(telemetry)
            graph = ShardedGraph(
                profile.num_vertices, num_shards,
                telemetry_level=backend.level, adjacency=adjacency,
            )
        self.num_shards = num_shards
        super().__init__(
            profile, batch_size, graph=graph, telemetry=telemetry, **kwargs
        )

    def close(self) -> None:
        """Shut down the shard workers backing this pipeline's graph."""
        close = getattr(self.graph, "close", None)
        if close is not None:
            close()

    def shard_telemetry(self):
        """The graph's merged shard telemetry (see
        :meth:`ShardedGraph.shard_telemetry`)."""
        return self.graph.shard_telemetry()

    def __enter__(self) -> "ShardedPipeline":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False
