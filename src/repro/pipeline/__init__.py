"""Streaming pipeline: modes, metrics, runner and the workload matrix."""

from .executor import CellResult, CellSpec, run_matrix
from .latency import LatencyStats, latency_stats, reaction_latencies
from .metrics import BatchMetrics, RunMetrics
from .modes import MODES, resolve_mode
from .runner import ALGORITHMS, StreamingPipeline
from .tracing import TraceEvent, TraceWriter, read_trace
from .workloads import DEFAULT_BATCH_CAPS, Workload, workload_matrix

__all__ = [
    "CellResult",
    "CellSpec",
    "run_matrix",
    "LatencyStats",
    "latency_stats",
    "reaction_latencies",
    "BatchMetrics",
    "RunMetrics",
    "MODES",
    "resolve_mode",
    "ALGORITHMS",
    "StreamingPipeline",
    "TraceEvent",
    "TraceWriter",
    "read_trace",
    "DEFAULT_BATCH_CAPS",
    "Workload",
    "workload_matrix",
]
