"""Trial-scoring objectives: higher is always better.

An objective turns one evaluated trial — the worker's
:class:`~repro.pipeline.executor.CellResult` plus the exact
:class:`~repro.pipeline.config.RunConfig` it ran — into a single float the
optimizer maximizes.  All scores are per-edge or ratio quantities so trials
with different batch sizes stay comparable (the driver additionally holds
the total edge budget constant across trials; see
``TuneDriver._trial_config``).

Built-ins:

* ``ingest_throughput`` — edges ingested per modeled time unit over the
  whole run (update + compute);
* ``update_time`` — negated modeled update time per edge (maximizing it
  minimizes the paper's headline update-phase cost);
* ``ro_speedup`` — the run's speedup over the always-baseline
  counterfactual, computed from the engine's ``update.alt.baseline``
  telemetry counter (requires an instrumented run; the driver bumps
  trial telemetry to ``basic`` automatically).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import TuneError

__all__ = ["Objective", "OBJECTIVES", "register_objective", "get_objective"]


@dataclass(frozen=True)
class Objective:
    """A named scoring function with its metadata.

    Attributes:
        name: registry key (``--objective`` value).
        fn: ``(result, config) -> float`` — higher is better.
        requires_telemetry: True if scoring reads the trial's telemetry
            snapshot (the driver then instruments trial runs).
        description: one-line summary for ``repro tune`` help output.
    """

    name: str
    fn: Callable
    requires_telemetry: bool
    description: str

    def score(self, result, config) -> float:
        return self.fn(result, config)


OBJECTIVES: dict[str, Objective] = {}


def register_objective(name: str, *, requires_telemetry: bool = False,
                       description: str = ""):
    """Function decorator adding a scoring function to the registry."""

    def decorate(fn):
        OBJECTIVES[name] = Objective(
            name=name,
            fn=fn,
            requires_telemetry=requires_telemetry,
            description=description or (fn.__doc__ or "").strip(),
        )
        return fn

    return decorate


def get_objective(name: str) -> Objective:
    if name not in OBJECTIVES:
        raise TuneError(
            f"unknown objective {name!r}; registered: {sorted(OBJECTIVES)}"
        )
    return OBJECTIVES[name]


def _edges(result, config) -> float:
    """Edges the trial actually ingested (telemetry-exact when available)."""
    snapshot = result.telemetry
    if snapshot is not None:
        counted = snapshot.counter("update.edges")
        if counted > 0:
            return counted
    return float(config.batch_size * result.num_batches)


@register_objective(
    "ingest_throughput",
    description="edges ingested per modeled time unit (update + compute)",
)
def ingest_throughput(result, config) -> float:
    total = result.total_time
    if total <= 0:
        raise TuneError(
            f"trial reported non-positive total time ({total}); cannot score"
        )
    return _edges(result, config) / total


@register_objective(
    "update_time",
    description="negated modeled update time per edge (maximize = minimize)",
)
def update_time(result, config) -> float:
    edges = _edges(result, config)
    if edges <= 0:
        raise TuneError("trial ingested no edges; cannot score update_time")
    return -result.update_time / edges


@register_objective(
    "ro_speedup",
    requires_telemetry=True,
    description="update speedup over the always-baseline counterfactual",
)
def ro_speedup(result, config) -> float:
    snapshot = result.telemetry
    if snapshot is None:
        raise TuneError(
            "ro_speedup needs an instrumented trial (telemetry >= basic) — "
            "the update.alt.baseline counter is missing"
        )
    baseline = snapshot.counter("update.alt.baseline")
    if baseline <= 0 or result.update_time <= 0:
        raise TuneError(
            "ro_speedup is undefined: baseline counterfactual "
            f"{baseline} / actual update time {result.update_time}"
        )
    return baseline / result.update_time
