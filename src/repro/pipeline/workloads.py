"""The evaluation workload matrix (Section 6.1).

14 datasets x 5 batch sizes x 4 algorithms = 260 workloads (friendster and uk
run only the incremental algorithms, trimming 2 x 5 x 2 = 20 cells from the
full 280).  Batch-count caps keep the scaled matrix tractable; they shrink
with batch size so every run covers a comparable slice of each stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator

from ..datasets.profiles import BATCH_SIZES, DATASETS, DatasetProfile
from ..errors import ConfigurationError

__all__ = ["Workload", "workload_matrix", "DEFAULT_BATCH_CAPS"]

#: Default per-batch-size caps on the number of batches processed per run.
#: Chosen so runs at every batch size cover enough stream to reach the
#: steady-state regime the paper measures while keeping the full matrix
#: tractable in Python (DESIGN.md Section 2).
DEFAULT_BATCH_CAPS: dict[int, int] = {
    100: 24,
    1_000: 24,
    10_000: 12,
    100_000: 8,
    500_000: 4,
}

#: Datasets restricted to incremental algorithms (Section 6.1: "the largest
#: datasets friendster and uk are run on only the incremental algorithms").
INCREMENTAL_ONLY: frozenset[str] = frozenset({"friendster", "uk"})


@dataclass(frozen=True)
class Workload:
    """One cell of the evaluation matrix."""

    profile: DatasetProfile
    batch_size: int
    algorithm: str

    @property
    def name(self) -> str:
        return f"{self.profile.name}-{self.batch_size}-{self.algorithm}"

    def num_batches(self, caps: dict[int, int] | None = None) -> int:
        caps = DEFAULT_BATCH_CAPS if caps is None else caps
        cap = caps.get(self.batch_size)
        if cap is None:
            raise ConfigurationError(
                f"no batch cap configured for batch size {self.batch_size}"
            )
        return self.profile.num_batches(self.batch_size, cap=cap)


def workload_matrix(
    datasets: list[str] | None = None,
    batch_sizes: tuple[int, ...] = BATCH_SIZES,
    algorithms: tuple[str, ...] = ("pr", "sssp", "pr_static", "sssp_static"),
) -> Iterator[Workload]:
    """Yield the evaluation workloads in dataset-major order.

    With default arguments this is the paper's 260-workload matrix.
    """
    names = datasets if datasets is not None else list(DATASETS)
    for name in names:
        profile = DATASETS[name]
        for batch_size in batch_sizes:
            for algorithm in algorithms:
                if name in INCREMENTAL_ONLY and algorithm.endswith("_static"):
                    continue
                yield Workload(profile=profile, batch_size=batch_size, algorithm=algorithm)
