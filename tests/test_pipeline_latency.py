"""Reaction-latency accounting, including OCA deferral penalties."""

import pytest

from repro.compute.oca import OCAConfig
from repro.errors import AnalysisError
from repro.pipeline.latency import latency_stats, reaction_latencies
from repro.pipeline.metrics import BatchMetrics, RunMetrics
from repro.pipeline.runner import StreamingPipeline
from repro.update.engine import UpdatePolicy


def _run(batches):
    run = RunMetrics("d", 10, "pr", "baseline")
    for b in batches:
        run.add(b)
    return run


def test_plain_batches_latency_is_own_time():
    run = _run([
        BatchMetrics(0, 10.0, 30.0, "baseline"),
        BatchMetrics(1, 20.0, 40.0, "baseline"),
    ])
    assert reaction_latencies(run) == [40.0, 60.0]


def test_deferred_batch_waits_for_aggregated_round():
    run = _run([
        BatchMetrics(0, 10.0, 0.0, "baseline", deferred=True),
        BatchMetrics(1, 20.0, 50.0, "baseline", aggregated_batches=2),
    ])
    latencies = reaction_latencies(run)
    # Batch 0's results only land after batch 1's update + aggregated round.
    assert latencies[0] == pytest.approx(10.0 + 20.0 + 50.0)
    assert latencies[1] == pytest.approx(70.0)


def test_chained_deferrals_accumulate():
    run = _run([
        BatchMetrics(0, 10.0, 0.0, "baseline", deferred=True),
        BatchMetrics(1, 10.0, 0.0, "baseline", deferred=True),
        BatchMetrics(2, 10.0, 60.0, "baseline", aggregated_batches=3),
    ])
    latencies = reaction_latencies(run)
    assert latencies[0] == pytest.approx(10.0 + 10.0 + 10.0 + 60.0)


def test_stats_summary():
    run = _run([
        BatchMetrics(i, 10.0, float(10 * i), "baseline") for i in range(5)
    ])
    stats = latency_stats(run)
    assert stats.maximum == pytest.approx(50.0)
    assert stats.p50 == pytest.approx(30.0)
    assert stats.mean == pytest.approx(30.0)
    assert stats.deferred_batches == 0


def test_stats_requires_batches():
    with pytest.raises(AnalysisError):
        latency_stats(_run([]))


def test_oca_trades_latency_for_throughput(skewed_profile):
    """The Section 5 trade-off, measured: aggregation lowers total compute
    time but raises the p95 reaction latency of deferred batches."""
    plain = StreamingPipeline(
        skewed_profile, 1_000, "pr", UpdatePolicy.BASELINE
    ).run(6)
    aggregated = StreamingPipeline(
        skewed_profile, 1_000, "pr", UpdatePolicy.BASELINE,
        use_oca=True, oca_config=OCAConfig(overlap_threshold=0.01, n=2),
    ).run(6)
    assert aggregated.total_compute_time < plain.total_compute_time
    assert latency_stats(aggregated).maximum > latency_stats(plain).maximum
