"""Dynamic graph interface shared by the evaluated data structures.

The paper evaluates the SAGA-Bench *adjacency list* structure (used by
multiple streaming systems) and discusses *degree-aware hashing* (DAH) as an
alternative (Section 6.2.3).  Both implement this interface: batched edge
ingestion with duplicate checking, plus the per-vertex statistics the update
cost models need (batch degree, pre-update adjacency length, new-vs-duplicate
split per direction).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..datasets.stream import Batch
from ..errors import VertexOutOfRangeError

__all__ = ["DirectionStats", "BatchUpdateStats", "DynamicGraph"]


@dataclass(frozen=True)
class DirectionStats:
    """Per-vertex update statistics for one direction of one batch.

    For the *out* direction, ``vertices`` are the batch's unique sources and
    each source's entries describe updates to its out-adjacency; for the *in*
    direction, destinations and in-adjacency.

    Attributes:
        vertices: unique vertex ids updated in this direction (sorted).
        batch_degree: number of batch edges per vertex (``k_v``).
        length_before: adjacency length before the batch (``L_v``).
        new_edges: entries actually inserted (non-duplicates).
        duplicates: entries that only refreshed an existing edge's weight.
    """

    vertices: np.ndarray
    batch_degree: np.ndarray
    length_before: np.ndarray
    new_edges: np.ndarray

    @property
    def duplicates(self) -> np.ndarray:
        return self.batch_degree - self.new_edges

    @property
    def num_vertices(self) -> int:
        return len(self.vertices)

    @property
    def num_edges(self) -> int:
        return int(self.batch_degree.sum()) if len(self.batch_degree) else 0


@dataclass(frozen=True)
class BatchUpdateStats:
    """Statistics of applying one batch (both directions).

    The update engines derive *all* modeled-time figures from this object, so
    a batch is applied to the structure exactly once no matter how many
    execution strategies are being compared.
    """

    batch_id: int
    batch_size: int
    out: DirectionStats
    inn: DirectionStats
    deleted_edges: int = 0

    @property
    def directions(self) -> tuple[DirectionStats, DirectionStats]:
        return (self.out, self.inn)


class DynamicGraph(abc.ABC):
    """A dynamic graph ingesting batched edge updates.

    Both directions are maintained (out- and in-adjacency), since batch
    reordering must sort by source *and* destination (Section 3.2).
    """

    def __init__(self, num_vertices: int):
        if num_vertices < 1:
            raise VertexOutOfRangeError(num_vertices, num_vertices)
        self.num_vertices = num_vertices
        self.num_edges = 0
        self.batches_applied = 0

    # -- structure-specific operations ------------------------------------
    @abc.abstractmethod
    def apply_batch(self, batch: Batch) -> BatchUpdateStats:
        """Ingest a batch (insertions, then deletions) and return stats.

        Deletion-after-insertion ordering follows Section 4.4.3 ("software
        triggers HAU to perform all insertions first before performing
        deletions").
        """

    @abc.abstractmethod
    def out_neighbors(self, v: int) -> dict[int, float]:
        """Out-adjacency of ``v`` as a target -> weight mapping."""

    @abc.abstractmethod
    def in_neighbors(self, v: int) -> dict[int, float]:
        """In-adjacency of ``v`` as a source -> weight mapping."""

    @abc.abstractmethod
    def sum_search_cost(
        self,
        batch_degree: np.ndarray,
        length_before: np.ndarray,
        new_edges: np.ndarray,
        per_element: float,
    ) -> np.ndarray:
        """Modeled per-vertex cost of the batch's duplicate-check searches.

        For each vertex, ``batch_degree`` searches run against an adjacency
        that starts at ``length_before`` entries and grows by ``new_edges``
        over the batch.  The plain adjacency list pays a linear scan per
        search; structures with cheaper membership tests (DAH) override this.

        Args:
            batch_degree: searches per vertex (``k_v``).
            length_before: adjacency length before the batch (``L_v``).
            new_edges: inserts that grow the adjacency during the batch.
            per_element: modeled cost of touching one adjacency element
                (already adjusted for cache warmth by the caller).

        Returns:
            Array of per-vertex total search costs.
        """

    @abc.abstractmethod
    def adjacency_views(
        self,
    ) -> tuple[dict[int, dict[int, float]], dict[int, dict[int, float]]]:
        """Direct (out, in) adjacency mappings for read-heavy algorithms.

        The compute engines iterate millions of adjacency entries per round;
        this accessor exposes the underlying vertex -> {neighbor: weight}
        mappings so those loops avoid per-neighbor method dispatch.  Callers
        must treat the returned mappings as read-only.
        """

    def consume_phase_overhead(self) -> float:
        """Structure-specific maintenance time accrued by the last batch.

        Structures with background work (e.g. the edge log's archiving)
        report it here; the update engine charges it to the batch regardless
        of strategy, then the accumulator resets.  The plain structures have
        none.
        """
        return 0.0

    # -- shared helpers ----------------------------------------------------
    def out_degree(self, v: int) -> int:
        return len(self.out_neighbors(v))

    def in_degree(self, v: int) -> int:
        return len(self.in_neighbors(v))

    def check_vertices(self, *arrays: np.ndarray) -> None:
        """Validate vertex ids against the universe."""
        for arr in arrays:
            if len(arr) and (int(arr.max()) >= self.num_vertices or int(arr.min()) < 0):
                bad = int(arr.max()) if int(arr.max()) >= self.num_vertices else int(arr.min())
                raise VertexOutOfRangeError(bad, self.num_vertices)
