"""Per-batch execution traces (JSONL), schema v2.

A trace records, for every batch of a pipeline run, what the input-aware
machinery observed and decided — the CAD measured, the strategy executed,
the OCA overlap and deferral, and the modeled times — plus (schema v2) one
closing **summary record** carrying the run's telemetry: wall-clock spans,
subsystem counters, and the decision ledger.  Traces make runs debuggable
and comparable offline (``repro report``, ``read_trace`` + any JSONL
tooling), and the CLI exposes them via ``repro run --trace FILE``.

Schema v2 line types (the ``type`` field):

* ``header`` — first line; carries ``schema_version``.
* ``batch`` — one :class:`TraceEvent` per processed batch.
* ``timeline`` — one
  :class:`~repro.telemetry.timeline.TimelineSnapshot` document per process
  of the run (coordinator plus shard workers), written at close when the
  run recorded a flight-recorder timeline.  ``repro report --timeline``
  re-exports these as Chrome trace-event JSON.
* ``summary`` — last line; a
  :class:`~repro.telemetry.core.TelemetrySnapshot` document (only written
  when the writer was given an enabled telemetry backend).

Schema v1 files (bare :class:`TraceEvent` lines, no ``type`` field) stay
readable: :func:`read_trace` and :func:`read_trace_document` accept both.
Unknown line types and unknown batch fields are skipped, so newer traces
degrade gracefully under older readers.  A trailing partially-written line
(a run crashed mid-``write``) is tolerated with a warning; malformed lines
anywhere else still raise.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path

from ..errors import AnalysisError
from ..telemetry.core import TelemetrySnapshot
from ..telemetry.timeline import TimelineSnapshot
from .metrics import BatchMetrics

__all__ = [
    "SCHEMA_VERSION",
    "TraceEvent",
    "TraceDocument",
    "TraceWriter",
    "read_trace",
    "read_trace_document",
]

#: Current trace schema version written by :class:`TraceWriter`.
SCHEMA_VERSION = 2


@dataclass(frozen=True)
class TraceEvent:
    """One batch's trace record."""

    dataset: str
    batch_size: int
    algorithm: str
    mode: str
    batch_id: int
    strategy: str
    update_time: float
    compute_time: float
    abr_active: bool
    cad: float | None
    overlap: float | None
    deferred: bool
    aggregated_batches: int

    @classmethod
    def from_metrics(
        cls,
        metrics: BatchMetrics,
        dataset: str,
        batch_size: int,
        algorithm: str,
        mode: str,
        abr_active: bool,
    ) -> "TraceEvent":
        return cls(
            dataset=dataset,
            batch_size=batch_size,
            algorithm=algorithm,
            mode=mode,
            batch_id=metrics.batch_id,
            strategy=metrics.strategy,
            update_time=metrics.update_time,
            compute_time=metrics.compute_time,
            abr_active=abr_active,
            cad=metrics.cad,
            overlap=metrics.overlap,
            deferred=metrics.deferred,
            aggregated_batches=metrics.aggregated_batches,
        )


_EVENT_FIELDS = frozenset(f.name for f in fields(TraceEvent))


@dataclass
class TraceDocument:
    """Everything parsed from one trace file.

    Attributes:
        path: the file the document was read from.
        schema_version: declared schema (1 for bare-event legacy files).
        events: the per-batch records, in stream order.
        summary: the run's telemetry snapshot, when the trace carries one.
        timelines: per-process flight-recorder timelines, in file order
            (empty for runs recorded without the timeline layer).
    """

    path: Path
    schema_version: int = 1
    events: list[TraceEvent] = field(default_factory=list)
    summary: TelemetrySnapshot | None = None
    timelines: list[TimelineSnapshot] = field(default_factory=list)


class TraceWriter:
    """Appends trace events to a JSONL file (schema v2).

    Usable as a context manager::

        with TraceWriter("run.jsonl", telemetry=telemetry) as trace:
            StreamingPipeline(..., trace=trace).run(10)

    ``close()`` (or context exit) writes the closing telemetry summary when
    an enabled backend was attached, then flushes and fsyncs so a crash
    after the run cannot lose buffered events.

    Args:
        path: output file (truncated on open).
        telemetry: optional telemetry backend whose
            :meth:`~repro.telemetry.core.Telemetry.snapshot` becomes the
            trace's summary record.  The pipeline wires its own backend in
            when one is configured (see
            :meth:`~repro.pipeline.config.RunConfig.build_pipeline`).
    """

    def __init__(self, path: str | Path, telemetry=None):
        self.path = Path(path)
        self._handle = open(self.path, "w")
        self.events_written = 0
        #: Telemetry backend snapshotted into the summary record on close.
        self.telemetry = telemetry
        #: Optional zero-arg callable returning the run's
        #: :class:`~repro.telemetry.timeline.TimelineSnapshot` list; the
        #: pipeline wires in its own ``timeline_snapshots`` so close()
        #: captures every process's timeline (workers included).
        self.timeline_provider = None
        self._handle.write(
            json.dumps({"type": "header", "schema_version": SCHEMA_VERSION})
            + "\n"
        )

    def write(self, event: TraceEvent) -> None:
        self._handle.write(
            json.dumps({"type": "batch", **asdict(event)}) + "\n"
        )
        # Flush (no fsync) per batch: a SIGKILLed run keeps every batch
        # line the OS received, and the reader tolerates a torn tail.
        self._handle.flush()
        self.events_written += 1

    def write_timeline(self, snapshot: TimelineSnapshot) -> None:
        """Append one process's timeline as a ``timeline`` record."""
        if snapshot is None or self._handle.closed:
            return
        self._handle.write(
            json.dumps({
                "type": "timeline",
                "schema_version": SCHEMA_VERSION,
                **snapshot.to_dict(),
            }) + "\n"
        )

    def close(self) -> None:
        if self._handle.closed:
            return
        if self.timeline_provider is not None:
            # Timelines are fetched best-effort: a dead worker must not
            # cost us the summary record below.
            try:
                for snapshot in self.timeline_provider():
                    self.write_timeline(snapshot)
            except Exception:
                pass
        if self.telemetry is not None and getattr(
            self.telemetry, "enabled", False
        ):
            summary = {
                "type": "summary",
                "schema_version": SCHEMA_VERSION,
                **self.telemetry.snapshot().to_dict(),
            }
            self._handle.write(json.dumps(summary) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_trace_document(path: str | Path) -> TraceDocument:
    """Parse a trace file (schema v1 or v2) into a :class:`TraceDocument`.

    A trailing line that is not valid JSON — the tell-tale of a run that
    died mid-write — is dropped with a :class:`UserWarning` instead of
    failing the whole read; every other malformed line raises.

    Raises:
        AnalysisError: for missing files or malformed non-trailing lines.
    """
    path = Path(path)
    if not path.exists():
        raise AnalysisError(f"no trace file at {path}")
    document = TraceDocument(path=path)
    lines = path.read_text().splitlines()
    last_index = len(lines) - 1
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            if index == last_index:
                warnings.warn(
                    f"{path}:{index + 1}: dropping partially-written "
                    f"trailing trace line ({exc})",
                    stacklevel=2,
                )
                break
            raise AnalysisError(
                f"{path}:{index + 1}: malformed trace line ({exc})"
            ) from exc
        kind = data.get("type", "batch") if isinstance(data, dict) else None
        try:
            if kind == "batch":
                payload = {
                    k: v for k, v in data.items() if k in _EVENT_FIELDS
                }
                document.events.append(TraceEvent(**payload))
            elif kind == "header":
                document.schema_version = int(
                    data.get("schema_version", SCHEMA_VERSION)
                )
            elif kind == "summary":
                document.summary = TelemetrySnapshot.from_dict(data)
            elif kind == "timeline":
                document.timelines.append(TimelineSnapshot.from_dict(data))
            # Unknown types: skip for forward compatibility.
        except (TypeError, ValueError, KeyError) as exc:
            raise AnalysisError(
                f"{path}:{index + 1}: malformed trace line ({exc})"
            ) from exc
    return document


def read_trace(path: str | Path) -> list[TraceEvent]:
    """Load a trace's per-batch events (summary/header records skipped).

    Raises:
        AnalysisError: for missing files or malformed lines.
    """
    return read_trace_document(path).events
