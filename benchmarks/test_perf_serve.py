"""Wall-clock live-ingest benchmark: ``repro serve`` request throughput
and ingest-to-visible latency.

Runs a real :class:`~repro.serve.server.ServeServer` on its own
event-loop thread and drives it with the load generator — two concurrent
TCP clients streaming edges in small submissions plus a query client —
so the measured numbers cover the whole serving path: line-JSON protocol,
admission control, micro-batch cutting, the pipeline driver thread, and
snapshot queries.  Headline numbers:

* ``requests_per_second`` — acked ``edges`` submissions per second across
  all clients (the service's request throughput);
* ``visible_p99_s`` — p99 of ingest-to-visible latency (admission of a
  submission to the completed pipeline step that makes it queryable), as
  measured by the server's own watermark markers.

The summary lands in ``results/BENCH_serve.json``; ``make serve-smoke``
compares against the committed ``benchmarks/BENCH_serve.json`` baseline.

Honesty notes for the committed baseline: wall-clock on a shared CI box
is noisy, so the enforced gates are wide (throughput may not drop below
half the baseline; p99 may not triple); the always-on assertions pin
semantics (every admitted edge became visible, queries answered) which
must hold on any machine.
"""

from __future__ import annotations

import asyncio
import json
import os
from pathlib import Path

from _harness import RESULTS_DIR, emit
from repro.analysis.report import render_table
from repro.pipeline.config import RunConfig
from repro.serve import ServeSettings, start_server_thread
from repro.serve.client import run_loadgen

DATASET = "fb"
CLIENTS = 2
EDGES_PER_CLIENT = 15_000
SUBMIT_SIZE = 300
BATCH_TARGET = 2_000
ROUNDS = 2  # best-of to shave scheduler noise

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_serve.json"


def _run_once() -> dict:
    config = RunConfig(
        dataset=DATASET, batch_size=BATCH_TARGET, algorithm="pr",
        mode="abr_usc", telemetry="basic",
    )
    settings = ServeSettings(
        batch_target=BATCH_TARGET, batch_min=256, flush_interval=0.05
    )
    handle = start_server_thread(config, settings)
    try:
        return asyncio.run(
            run_loadgen(
                handle.host, handle.port,
                clients=CLIENTS, edges=EDGES_PER_CLIENT,
                submit_size=SUBMIT_SIZE,
                query="pagerank_topk", query_interval=0.05,
            )
        )
    finally:
        handle.stop()


def run_serve() -> dict:
    best = None
    for __ in range(ROUNDS):
        report = _run_once()
        if (
            best is None
            or report["requests_per_second"] > best["requests_per_second"]
        ):
            best = report
    return {
        "dataset": DATASET,
        "clients": CLIENTS,
        "edges_per_client": EDGES_PER_CLIENT,
        "submit_size": SUBMIT_SIZE,
        "batch_target": BATCH_TARGET,
        "cpu_cores": os.cpu_count(),
        "edges_sent": best["edges_sent"],
        "edges_per_second": best["edges_per_second"],
        "requests_per_second": best["requests_per_second"],
        "ack_p99_s": best["ack_latency_s"]["p99"],
        "visible_p99_s": best["server"]["ingest_to_visible_s"]["p99"],
        "micro_batches": best["server"]["batches"],
        "queries_served": best.get("queries", {}).get("served", 0),
        "lag_edges_at_end": best["server"]["lag_edges"],
    }


def test_perf_serve(benchmark):
    result = benchmark.pedantic(run_serve, rounds=1, iterations=1)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_serve.json").write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n"
    )
    emit(
        "perf_serve",
        render_table(
            ["metric", "value"],
            [
                [f"edge submissions/s ({CLIENTS} clients)",
                 result["requests_per_second"]],
                ["edges/s", result["edges_per_second"]],
                ["ack p99 (s)", result["ack_p99_s"]],
                ["ingest-to-visible p99 (s)", result["visible_p99_s"]],
                ["micro-batches", result["micro_batches"]],
                ["queries served", result["queries_served"]],
            ],
            title="Live-ingest serving benchmark (repro serve)",
        ),
    )
    # Semantics hold on any machine: everything sent was admitted, became
    # visible, and the query client got answers from live snapshots.
    assert result["edges_sent"] == CLIENTS * EDGES_PER_CLIENT
    assert result["lag_edges_at_end"] == 0
    assert result["micro_batches"] >= (
        CLIENTS * EDGES_PER_CLIENT
    ) // BATCH_TARGET
    assert result["requests_per_second"] > 0.0
    assert result["visible_p99_s"] > 0.0
    if os.environ.get("REPRO_BENCH_ENFORCE") == "1":
        baseline = (
            json.loads(BASELINE_PATH.read_text())
            if BASELINE_PATH.exists() else None
        )
        if baseline is not None and (
            baseline["clients"] != result["clients"]
            or baseline["edges_per_client"] != result["edges_per_client"]
            or baseline["submit_size"] != result["submit_size"]
        ):
            baseline = None  # apples-to-apples only
        if baseline is not None:
            assert result["requests_per_second"] >= (
                baseline["requests_per_second"] * 0.5
            ), (
                "serve request throughput regressed >2x vs committed "
                f"baseline: {result['requests_per_second']:.0f}/s vs "
                f"{baseline['requests_per_second']:.0f}/s"
            )
            assert result["visible_p99_s"] <= (
                baseline["visible_p99_s"] * 3.0
            ), (
                "ingest-to-visible p99 regressed >3x vs committed "
                f"baseline: {result['visible_p99_s']:.4f}s vs "
                f"{baseline['visible_p99_s']:.4f}s"
            )
