"""ASCII table/series rendering for experiment output.

Every benchmark prints its figure/table through these helpers so the output
format is uniform and diffable (EXPERIMENTS.md embeds excerpts).
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_table", "render_series", "render_kv"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render rows as a fixed-width ASCII table."""
    formatted_rows = [
        [
            float_format.format(cell) if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in formatted_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in formatted_rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    name: str, xs: Sequence[object], ys: Sequence[float], y_format: str = "{:.2f}"
) -> str:
    """Render one figure series as ``name: x=y`` pairs, one per line."""
    lines = [f"series {name}:"]
    for x, y in zip(xs, ys):
        lines.append(f"  {x} = {y_format.format(y)}")
    return "\n".join(lines)


def render_kv(title: str, pairs: dict[str, object]) -> str:
    """Render a key/value block (summary insets, config dumps)."""
    width = max(len(k) for k in pairs) if pairs else 0
    lines = [title]
    for key, value in pairs.items():
        rendered = f"{value:.3f}" if isinstance(value, float) else str(value)
        lines.append(f"  {key.ljust(width)} : {rendered}")
    return "\n".join(lines)
