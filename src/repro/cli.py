"""Command-line interface: ``repro <command>`` / ``python -m repro``.

Commands:

* ``datasets`` — print the Table 2 inventory (paper + scaled profiles).
* ``run`` — run one pipeline cell and print its metrics; ``--checkpoint
  DIR --every N`` persists resumable state every N batches and
  auto-resumes from the newest checkpoint in DIR.
* ``characterize`` — RO trade-off study for one dataset (Fig. 3 row).
* ``hau`` — simulate HAU on one cell and print Table 3-style numbers plus
  the Fig. 19/20 per-core statistics.
* ``oca`` — measure inter-batch overlap and OCA's compute speedup per
  batch size for one dataset (Fig. 14 row).
* ``accuracy`` — ABR decision accuracy over the Fig. 18 (lambda, TH) grid.
* ``sensitivity`` — cost-constant robustness sweep for one parameter.
* ``fidelity`` — paper-reported vs measured summary, joined from the JSON
  records the benchmarks leave under ``results/``.
* ``report`` — analyze one recorded trace (per-stage/per-strategy
  breakdowns, counters, anomaly flags, decision ledger) or A/B-compare two
  traces; ``--timeline OUT`` re-exports the trace's flight-recorder
  timeline as Chrome trace-event JSON (viewable in Perfetto).
* ``top`` — live view of an in-flight run via its ``--heartbeat`` file.
* ``tune`` — auto-tune policy knobs (ABR TH/lambda/n, OCA threshold,
  batch size, adjacency, ...) over a declared search space with a
  pluggable optimizer; trials are journaled so a killed search resumes
  (docs/TUNING.md).
* ``serve`` — long-running live edge-ingest service: TCP line-JSON
  clients stream edges through multi-tenant admission into CAD-sized
  micro-batches; queries are answered from the latest snapshot
  (docs/SERVE.md).
* ``loadgen`` — synthetic multi-client driver for a running ``serve``.
* ``cache`` — inspect or clear the on-disk stream cache.

``run`` and ``characterize`` accept ``--jobs N`` to fan independent cells
out over worker processes (0 = all cores); results are printed in the same
order and format as the serial run.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from .analysis.characterization import characterize_cell
from .analysis.report import render_kv, render_table
from .datasets.profiles import BATCH_SIZES, DATASETS, get_dataset
from .exec_model.machine import SIMULATED_MACHINE
from .graph.adjacency_list import AdjacencyListGraph
from .graph.formats import ADJACENCY_FORMATS, DEFAULT_ADJACENCY
from .hau.simulator import HAUSimulator
from .pipeline.config import RunConfig
from .pipeline.modes import MODES
from .pipeline.partition import PARTITION_POLICIES
from .pipeline.transport import DEFAULT_TRANSPORT, SHARD_TRANSPORTS
from .pipeline.runner import ALGORITHMS
from .telemetry.core import TELEMETRY_LEVELS
from .update.engine import UpdateEngine, UpdatePolicy

__all__ = ["main"]


def _cmd_datasets(_args: argparse.Namespace) -> int:
    rows = [
        [
            p.name,
            p.full_name,
            p.kind,
            f"{p.paper_vertices:,}",
            f"{p.paper_edges:,}",
            f"{p.num_vertices:,}",
            f"{p.stream_edges:,}",
            ",".join(str(s) for s in sorted(p.friendly_sizes)) or "-",
        ]
        for p in DATASETS.values()
    ]
    print(
        render_table(
            ["name", "full name", "kind", "paper |V|", "paper |E|",
             "scaled |V|", "scaled |E|", "RO-friendly sizes"],
            rows,
            title="Table 2: evaluated datasets (paper originals and scaled profiles)",
        )
    )
    return 0


def _resolve_telemetry_level(args: argparse.Namespace) -> None:
    """Default ``--telemetry`` to full when an exporter needs data."""
    if getattr(args, "telemetry", None) is None:
        wants_export = bool(
            args.trace
            or getattr(args, "prom", None)
            or getattr(args, "timeline", None)
            or getattr(args, "heartbeat", None)
        )
        args.telemetry = "full" if wants_export else "off"


def _cmd_run(args: argparse.Namespace) -> int:
    _resolve_telemetry_level(args)
    if len(args.dataset) > 1:
        return _cmd_run_matrix(args)
    config = RunConfig.from_cli_args(args)
    trace = None
    if args.trace:
        from .pipeline.tracing import TraceWriter

        trace = TraceWriter(args.trace)
    pipeline = config.build_pipeline(trace=trace)
    run_kwargs = {}
    if args.heartbeat or args.prom:
        from .telemetry.heartbeat import HeartbeatMonitor

        run_kwargs["monitor"] = HeartbeatMonitor(
            args.heartbeat or None,
            prom_path=args.prom or None,
            prom_labels={"dataset": config.dataset, "mode": config.mode},
            run_id=pipeline.run_id,
            label=(
                f"{config.dataset} @ {config.batch_size} "
                f"[{config.algorithm}, {config.mode}]"
            ),
            total_batches=config.num_batches,
        )
    if args.checkpoint:
        from .pipeline.checkpoint import latest_checkpoint

        found = latest_checkpoint(args.checkpoint)
        if found is not None:
            checkpoint, path = found
            print(
                f"resuming from {path} "
                f"(cursor {checkpoint.cursor}, {checkpoint.batches_done} batches done)"
            )
            run_kwargs["resume_from"] = checkpoint
        run_kwargs["checkpoint_dir"] = args.checkpoint
        run_kwargs["checkpoint_every"] = args.every
    try:
        metrics = pipeline.run(config.num_batches, **run_kwargs)
    except KeyboardInterrupt:
        # The pipeline stops at a batch boundary on the first Ctrl-C (and
        # has already written a final checkpoint when --checkpoint is on),
        # so this is a clean early exit, not a crash: conventional 130.
        if trace is not None:
            trace.close()
        if args.checkpoint:
            print(
                "interrupted — progress checkpointed at the last batch "
                f"boundary in {args.checkpoint}; rerun to resume",
                file=sys.stderr,
            )
        else:
            print("interrupted", file=sys.stderr)
        return 130
    finally:
        close = getattr(pipeline, "close", None)
        if close is not None:  # sharded pipelines own worker processes
            close()
    if trace is not None:
        trace.close()
        print(f"trace: {trace.events_written} events -> {trace.path}")
    if args.timeline:
        from .telemetry.timeline import write_chrome_trace

        # Workers were harvested at close(); the coordinator recorder is
        # still live, so the export sees every process.
        snapshots = pipeline.timeline_snapshots()
        if snapshots:
            write_chrome_trace(args.timeline, snapshots)
            events = sum(len(s.events) for s in snapshots)
            print(
                f"timeline: {events} events from {len(snapshots)} "
                f"process(es) -> {args.timeline}"
            )
        else:
            print(
                "no timeline recorded (the flight recorder requires "
                "--telemetry full)",
                file=sys.stderr,
            )
    if args.heartbeat:
        print(f"heartbeat -> {args.heartbeat}")
    if args.prom and pipeline.telemetry.enabled:
        from .telemetry.export import write_prometheus_textfile

        write_prometheus_textfile(
            pipeline.telemetry.snapshot(),
            args.prom,
            labels={"dataset": config.dataset, "mode": config.mode},
        )
        print(f"prometheus metrics -> {args.prom}")
    print(
        render_kv(
            f"{config.dataset} @ {config.batch_size} [{config.algorithm}, {config.mode}"
            f"{', oca' if config.use_oca else ''}]",
            {
                "batches": metrics.num_batches,
                "update time (tu)": metrics.total_update_time,
                "compute time (tu)": metrics.total_compute_time,
                "total time (tu)": metrics.total_time,
                "update share": metrics.update_share,
                "strategies": str(metrics.strategies_used()),
            },
        )
    )
    return 0


def _cmd_run_matrix(args: argparse.Namespace) -> int:
    """Multiple datasets: run the cells via the (optionally parallel) executor.

    One cell failing (a worker crash, timeout, or an error inside the
    pipeline) does not abort the matrix: the surviving cells print
    normally, failed cells print their error, and the exit code is 1.
    """
    from .pipeline.executor import (
        executor_telemetry,
        merged_telemetry,
        merged_timelines,
        run_matrix,
    )

    configs = [RunConfig.from_cli_args(args, dataset=name) for name in args.dataset]
    if any(config.requires_hau for config in configs) or args.trace:
        print(
            "HAU modes and --trace require a single dataset", file=sys.stderr
        )
        return 2
    if args.checkpoint:
        print("--checkpoint requires a single dataset", file=sys.stderr)
        return 2
    if args.heartbeat:
        print("--heartbeat requires a single dataset", file=sys.stderr)
        return 2
    if getattr(args, "shards", 1) > 1:
        print("--shards requires a single dataset", file=sys.stderr)
        return 2
    stats: dict = {}
    results = run_matrix(configs, jobs=args.jobs, stats=stats)
    failed = [result for result in results if not result.ok]
    for result in results:
        spec = result.spec
        title = (
            f"{spec.dataset} @ {spec.batch_size} [{spec.algorithm}, {spec.mode}"
            f"{', oca' if spec.use_oca else ''}]"
        )
        if not result.ok:
            print(render_kv(title, {"status": "FAILED", "error": result.error}))
            continue
        print(
            render_kv(
                title,
                {
                    "batches": result.num_batches,
                    "update time (tu)": result.update_time,
                    "compute time (tu)": result.compute_time,
                    "total time (tu)": result.total_time,
                    "update share": result.update_time / result.total_time,
                    "strategies": str(dict(result.strategies)),
                },
            )
        )
    if failed:
        print(
            f"{len(failed)}/{len(results)} cell(s) failed: "
            + ", ".join(result.spec.dataset for result in failed),
            file=sys.stderr,
        )
    if args.prom:
        from .telemetry.export import write_prometheus_textfile

        merged = merged_telemetry(results)
        health = executor_telemetry(results, stats)
        snapshot = health if merged is None else merged.merged(health)
        write_prometheus_textfile(snapshot, args.prom)
        print(f"prometheus metrics (all cells merged) -> {args.prom}")
    if args.timeline:
        from .telemetry.timeline import write_chrome_trace

        snapshots = merged_timelines(results)
        if snapshots:
            write_chrome_trace(args.timeline, snapshots)
            events = sum(len(s.events) for s in snapshots)
            print(
                f"timeline: {events} events from {len(snapshots)} "
                f"process(es) -> {args.timeline}"
            )
        else:
            print(
                "no timeline recorded (the flight recorder requires "
                "--telemetry full)",
                file=sys.stderr,
            )
    return 1 if failed else 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .telemetry.report import load_report, render_compare, render_report

    base = load_report(args.trace)
    if getattr(args, "timeline_out", None):
        from .telemetry.timeline import write_chrome_trace

        timelines = base.document.timelines
        if not timelines:
            print(
                f"{args.trace}: no timeline lines in trace (record with "
                "`repro run --trace ... --telemetry full`)",
                file=sys.stderr,
            )
            return 1
        write_chrome_trace(args.timeline_out, timelines)
        events = sum(len(s.events) for s in timelines)
        print(
            f"timeline: {events} events from {len(timelines)} "
            f"process(es) -> {args.timeline_out}"
        )
    if args.trace_b is None:
        print(render_report(base))
    else:
        print(render_compare(base, load_report(args.trace_b)))
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """Render the live heartbeat of an in-flight run, ``top``-style."""
    import time

    from .telemetry.heartbeat import read_heartbeat, render_heartbeat

    def frame() -> str | None:
        data = read_heartbeat(args.path)
        if data is None:
            return None
        return render_heartbeat(data, max_age=args.max_age)

    if args.once:
        text = frame()
        if text is None:
            print(f"{args.path}: no readable heartbeat", file=sys.stderr)
            return 1
        print(text)
        return 0
    # The refresh loop draws on the alternate screen buffer so Ctrl-C
    # hands the terminal back exactly as it was, instead of leaving the
    # user's scrollback replaced by a cleared screen.  An unreadable or
    # half-written heartbeat (frame() -> None) renders as "waiting".
    try:
        sys.stdout.write("\x1b[?1049h")
        while True:
            text = frame()
            # ANSI: clear screen + home, so the view refreshes in place.
            sys.stdout.write("\x1b[2J\x1b[H")
            if text is None:
                sys.stdout.write(f"waiting for heartbeat at {args.path} ...\n")
            else:
                sys.stdout.write(text + "\n")
            sys.stdout.flush()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    finally:
        sys.stdout.write("\x1b[?1049l")
        sys.stdout.flush()


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived live-ingest service (see docs/SERVE.md)."""
    import asyncio
    import os
    import signal
    from pathlib import Path

    from .serve import ServeServer, ServeSettings

    if getattr(args, "telemetry", None) is None:
        args.telemetry = "basic"
    config = RunConfig.from_serve_args(args)
    settings = ServeSettings.from_env(
        batch_target=args.serve_batch or args.batch_size,
        batch_min=args.serve_batch_min,
        flush_interval=(
            args.flush_ms / 1000.0 if args.flush_ms is not None else None
        ),
        queue_depth=args.queue_depth,
        max_pending=args.max_pending,
        fair_share=args.fair_share,
        rate=args.rate,
        burst=args.burst,
        max_delay=args.max_delay,
    )
    if args.fixed_batching:
        settings.adaptive = False
    if args.checkpoint:
        settings.checkpoint_dir = args.checkpoint
        settings.checkpoint_every = args.every
    monitor = None
    if args.heartbeat or args.prom:
        from .telemetry.heartbeat import HeartbeatMonitor

        monitor = HeartbeatMonitor(
            args.heartbeat or None,
            prom_path=args.prom or None,
            prom_labels={"dataset": config.dataset, "mode": config.mode},
            label=(
                f"serve {config.dataset} [{config.algorithm}, {config.mode}]"
            ),
        )

    async def _main() -> int:
        server = ServeServer(config, settings, monitor=monitor)
        host, port = await server.start(args.host, args.port)
        if args.port_file:
            # Atomic write: a watching launcher never reads a torn port.
            target = Path(args.port_file)
            tmp = target.with_suffix(target.suffix + ".tmp")
            tmp.write_text(f"{port}\n", encoding="utf-8")
            os.replace(tmp, target)
        print(
            f"serving {config.dataset} [{config.algorithm}, {config.mode}] "
            f"on {host}:{port} (batch target {settings.batch_target}, "
            f"pending cap {settings.max_pending})",
            flush=True,
        )
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await stop.wait()
        print("draining: admission closed, flushing buffered edges ...",
              flush=True)
        await server.drain()
        final = server._stats()
        print(
            render_kv(
                "serve summary",
                {
                    "edges ingested": final["visible_seq"],
                    "micro-batches": final["batches"],
                    "queries served": final["queries_served"],
                    "rejected requests": final["rejected_requests"],
                    "ingest-to-visible p99 (s)": final[
                        "ingest_to_visible_s"
                    ]["p99"],
                },
            )
        )
        return 0

    return asyncio.run(_main())


def _cmd_loadgen(args: argparse.Namespace) -> int:
    """Drive a running ``repro serve`` with synthetic clients."""
    import asyncio
    import json

    from .serve.client import run_loadgen

    try:
        report = asyncio.run(
            run_loadgen(
                args.host,
                args.port,
                clients=args.clients,
                edges=args.edges,
                submit_size=args.submit_size,
                seed=args.seed,
                query=args.query,
                query_interval=args.query_interval,
            )
        )
    except ConnectionError as exc:
        print(
            f"loadgen: cannot reach {args.host}:{args.port} ({exc}); "
            "is `repro serve` running?",
            file=sys.stderr,
        )
        return 1
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    summary = {
        "clients": report["clients"],
        "edges sent": report["edges_sent"],
        "wall (s)": report["wall_seconds"],
        "edges/s": report["edges_per_second"],
        "requests/s": report["requests_per_second"],
        "ack p99 (s)": report["ack_latency_s"]["p99"],
        "visible p99 (s)": report["server"]["ingest_to_visible_s"]["p99"],
    }
    if "queries" in report:
        summary["queries served"] = report["queries"]["served"]
        summary["query p99 (s)"] = report["queries"]["latency_s"]["p99"]
    print(render_kv("loadgen", summary))
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    from .analysis.characterization import characterize_cell_spec
    from .pipeline.executor import map_cells

    profile = get_dataset(args.dataset)
    specs = [
        (profile.name, batch_size, profile.num_batches(batch_size, cap=args.num_batches), 7)
        for batch_size in BATCH_SIZES
    ]
    cells = map_cells(characterize_cell_spec, specs, jobs=args.jobs)
    rows = [
        [
            cell.batch_size,
            cell.ro_speedup,
            cell.usc_speedup,
            cell.max_degree,
            "friendly" if cell.ro_friendly else "adverse",
        ]
        for cell in cells
    ]
    print(
        render_table(
            ["batch size", "RO speedup", "RO+USC speedup", "max degree", "category"],
            rows,
            title=f"RO characterization for {profile.name} (Fig. 3 row)",
        )
    )
    return 0


def _cmd_hau(args: argparse.Namespace) -> int:
    profile = get_dataset(args.dataset)
    graph_sw = AdjacencyListGraph(profile.num_vertices)
    sw = UpdateEngine(graph_sw, UpdatePolicy.ABR_USC, machine=SIMULATED_MACHINE)
    for batch in profile.generator().batches(args.batch_size, args.num_batches):
        sw.ingest(batch)
    graph_hw = AdjacencyListGraph(profile.num_vertices)
    hau = HAUSimulator()
    hw = UpdateEngine(
        graph_hw, UpdatePolicy.ABR_USC_HAU, machine=SIMULATED_MACHINE, hau=hau
    )
    for batch in profile.generator().batches(args.batch_size, args.num_batches):
        hw.ingest(batch)
    print(
        render_kv(
            f"HAU on {profile.name} @ {args.batch_size} ({args.num_batches} batches)",
            {
                "ABR+USC update time (tu)": sw.total_time,
                "ABR+USC+HAU update time (tu)": hw.total_time,
                "update speedup": sw.total_time / hw.total_time,
            },
        )
    )
    if hau.results:
        last = hau.results[-1]
        rows = [
            [core, last.tasks_per_core[core], last.lines_per_core[core]]
            for core in sorted(last.tasks_per_core)
        ]
        print()
        print(
            render_table(
                ["core", "update tasks", "edge-data cachelines"],
                rows,
                title="Fig. 19: per-core work distribution (last simulated batch)",
                float_format="{:.0f}",
            )
        )
        print()
        print(
            render_kv(
                "Fig. 20: locality and NoC impact (last simulated batch)",
                {
                    "local tile hit fraction": last.local_fraction,
                    "remote access reduction vs software": last.remote_access_reduction,
                    "max packet latency increase (%)": max(
                        last.packet_latency_increase.values()
                    ),
                },
            )
        )
    return 0


def _cmd_oca(args: argparse.Namespace) -> int:
    profile = get_dataset(args.dataset)
    rows = []
    for batch_size in (1_000, 10_000, 100_000):
        nb = max(
            profile.num_batches(batch_size, cap=args.num_batches), 1
        )
        cell = RunConfig(
            dataset=profile.name, batch_size=batch_size, algorithm="pr",
            mode="abr_usc", num_batches=nb, pr_tolerance=1e-5,
        )
        plain = cell.run()
        oca = dataclasses.replace(cell, use_oca=True).run()
        overlaps = [b.overlap for b in oca.batches if b.overlap is not None]
        rows.append(
            [
                batch_size,
                f"{max(overlaps):.2f}" if overlaps else "-",
                sum(b.deferred for b in oca.batches),
                plain.total_compute_time / oca.total_compute_time,
            ]
        )
    print(
        render_table(
            ["batch size", "max overlap", "rounds deferred", "compute speedup"],
            rows,
            title=f"OCA behaviour for {profile.name} (Fig. 14 row)",
        )
    )
    return 0


def _cmd_accuracy(args: argparse.Namespace) -> int:
    from .analysis.accuracy import FIG18_GRID
    from .update.cad import cad_from_degrees

    profile = get_dataset(args.dataset)
    examples = []
    for batch_size in (1_000, 10_000, 100_000):
        nb = profile.num_batches(batch_size, cap=args.num_batches)
        cell = characterize_cell(profile, batch_size, nb)
        generator = profile.generator()
        for index, beneficial in enumerate(cell.per_batch_ro_beneficial):
            batch = generator.generate_batch(index, batch_size)
            sides = (batch.in_degrees()[1], batch.out_degrees()[1])
            examples.append((beneficial, batch.size, sides))
    rows = []
    for lam, threshold in FIG18_GRID:
        correct = sum(
            (max(cad_from_degrees(d, size, lam) for d in sides) >= threshold)
            == truth
            for truth, size, sides in examples
        )
        rows.append([lam, threshold, correct / len(examples)])
    print(
        render_table(
            ["lambda", "TH", "accuracy"],
            rows,
            title=f"ABR decision accuracy for {profile.name} "
            f"({len(examples)} example batches)",
        )
    )
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    from .analysis.sensitivity import sweep_parameter

    cells = [
        (get_dataset("lj"), 100_000, args.num_batches),
        (get_dataset("wiki"), 100_000, args.num_batches),
    ]
    points = sweep_parameter(
        args.parameter, (0.5, 0.75, 1.0, 1.5, 2.0), cells, jobs=args.jobs
    )
    print(
        render_table(
            ["scale", "dataset", "RO speedup", "classification"],
            [
                [p.scale, p.dataset, p.ro_speedup,
                 "friendly" if p.friendly else "adverse"]
                if p.ok
                else [p.scale, p.dataset, "-", f"FAILED: {p.error}"]
                for p in points
            ],
            title=f"Sensitivity of the RO trade-off to '{args.parameter}'",
        )
    )
    failed = [p for p in points if not p.ok]
    if failed:
        print(
            f"{len(failed)}/{len(points)} sweep cell(s) failed",
            file=sys.stderr,
        )
    return 1 if failed else 0


def _cmd_fidelity(args: argparse.Namespace) -> int:
    from .analysis.experiments import ExperimentStore
    from .analysis.paper_targets import fidelity_report

    rows = fidelity_report(ExperimentStore(args.results))
    print(
        render_table(
            ["paper artifact", "paper", "measured", "band", "status"],
            [
                [
                    row["description"],
                    row["paper"],
                    "-" if row["measured"] is None else f"{row['measured']:.3f}",
                    f"[{row['band'][0]:g}, {row['band'][1]:g}]",
                    row["status"],
                ]
                for row in rows
            ],
            title="Reproduction fidelity (run `pytest benchmarks/ "
            "--benchmark-only` first to populate results/)",
        )
    )
    out_of_band = sum(row["status"] == "out-of-band" for row in rows)
    return 1 if out_of_band else 0


def _cmd_tune(args: argparse.Namespace) -> int:
    import json

    from .analysis.visualize import trajectory_chart
    from .errors import TuneError
    from .tune import TuneDriver, load_space

    base = RunConfig(
        dataset=args.dataset,
        batch_size=args.batch_size,
        algorithm=args.algorithm,
        mode=args.mode,
        use_oca=args.oca,
        num_batches=args.num_batches,
    )
    try:
        space = load_space(args.space)
        driver = TuneDriver(
            space,
            base,
            out_dir=args.out,
            objective=args.objective,
            optimizer=args.optimizer,
            trials=args.trials,
            jobs=args.jobs,
            seed=args.seed,
            checkpoint_every=args.checkpoint_every,
        )
        result = driver.run()
    except TuneError as exc:
        print(f"tune: {exc}", file=sys.stderr)
        return 2
    print(
        render_table(
            ["trial", "status", args.objective, "assignment"],
            [
                [
                    t.trial_id,
                    "ok" if t.ok else "FAILED",
                    f"{t.score:.6g}" if t.score is not None else "-",
                    json.dumps(t.assignment, sort_keys=True)
                    if t.ok
                    else t.error,
                ]
                for t in result.trials
            ],
            title=f"tune: {space.name} space, {args.optimizer} search, "
            f"{args.dataset} @ batch {args.batch_size}",
        )
    )
    print()
    print(
        trajectory_chart(
            [t.score for t in result.trials],
            title=f"objective trajectory ({result.objective})",
        )
    )
    print()
    baseline = result.trials[0]
    details = {
        "best trial": result.best.trial_id,
        "best score": result.best.score,
        "baseline score": baseline.score,
        "best config": str(driver.best_path),
        "trajectory": str(driver.trajectory_path),
        "journal": str(driver.journal_path),
    }
    if (
        baseline.score is not None
        and result.best.score is not None
        and baseline.score > 0
    ):
        details["improvement over default"] = (
            f"{result.best.score / baseline.score:.3f}x"
        )
    if result.resumed:
        details["resumed trials"] = result.resumed
    print(render_kv("search outcome", details))
    failed = sum(1 for t in result.trials if not t.ok)
    if failed:
        print(
            f"{failed}/{len(result.trials)} trial(s) failed "
            f"(see {driver.journal_path})",
            file=sys.stderr,
        )
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from .datasets.stream_cache import cache_stats, clear_cache

    if args.clear:
        removed = clear_cache()
        print(f"cleared {removed} cached stream(s)")
        return 0
    stats = cache_stats()
    print(
        render_kv(
            "stream cache",
            {
                "directory": stats["directory"],
                "entries": stats["entries"],
                "size (MiB)": stats["bytes"] / (1024 * 1024),
            },
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Input-aware streaming graph processing (MICRO 2021 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="print the dataset inventory")

    run = sub.add_parser("run", help="run one or more pipeline cells")
    run.add_argument("dataset", nargs="+", choices=sorted(DATASETS))
    run.add_argument("--batch-size", type=int, default=10_000)
    run.add_argument("--num-batches", type=int, default=12)
    run.add_argument("--algorithm", choices=ALGORITHMS, default="pr")
    run.add_argument("--mode", choices=sorted(MODES), default="abr_usc")
    run.add_argument("--oca", action="store_true", help="enable compute aggregation")
    run.add_argument("--trace", help="write a per-batch JSONL trace to this file")
    run.add_argument(
        "--telemetry", choices=TELEMETRY_LEVELS, default=None,
        help="instrumentation level (default: full when --trace/--prom "
        "is given, otherwise off)",
    )
    run.add_argument(
        "--prom", metavar="FILE",
        help="export telemetry counters to this Prometheus textfile "
        "(refreshed in-run every batch when --heartbeat is also set)",
    )
    run.add_argument(
        "--timeline", metavar="FILE",
        help="export the run's cross-process flight-recorder timeline as "
        "Chrome trace-event JSON (open in Perfetto / chrome://tracing)",
    )
    run.add_argument(
        "--heartbeat", metavar="FILE",
        help="atomically rewrite a live heartbeat JSON file every batch; "
        "watch it with `repro top FILE` (single dataset only)",
    )
    run.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for multi-dataset runs (0 = all cores)",
    )
    run.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="vertex-partitioned shard worker processes for a single run's "
        "update phase (results are bit-identical at any shard count; "
        "single dataset only)",
    )
    run.add_argument(
        "--shard-transport", choices=sorted(SHARD_TRANSPORTS), default=None,
        metavar="NAME", dest="shard_transport",
        help="how the coordinator reaches its shard workers: "
        f"{', '.join(sorted(SHARD_TRANSPORTS))} (results are bit-identical "
        "across transports; default: $REPRO_SHARD_TRANSPORT or "
        f"{DEFAULT_TRANSPORT!r}; only meaningful with --shards > 1)",
    )
    run.add_argument(
        "--shard-policy", choices=sorted(PARTITION_POLICIES), default=None,
        metavar="NAME", dest="shard_policy",
        help="vertex-placement policy materializing the shard owner map: "
        f"{', '.join(sorted(PARTITION_POLICIES))} (results are "
        "bit-identical across policies; default: 'mod', the paper's "
        "mapping; only meaningful with --shards > 1)",
    )
    run.add_argument(
        "--adjacency", choices=sorted(ADJACENCY_FORMATS), default=None,
        help="adjacency format for the run's graph (results are "
        "bit-identical across formats; default: $REPRO_ADJ_FORMAT or "
        f"{DEFAULT_ADJACENCY!r})",
    )
    run.add_argument(
        "--checkpoint", metavar="DIR",
        help="checkpoint pipeline state into DIR and auto-resume from the "
        "newest checkpoint found there (single dataset only)",
    )
    run.add_argument(
        "--every", type=int, default=5, metavar="N",
        help="batches between checkpoints when --checkpoint is set "
        "(default: 5)",
    )

    serve = sub.add_parser(
        "serve", help="long-running live edge-ingest service (docs/SERVE.md)"
    )
    serve.add_argument(
        "dataset", choices=sorted(DATASETS),
        help="dataset profile supplying the vertex universe",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port to listen on (default: 0 = ephemeral)",
    )
    serve.add_argument(
        "--port-file", metavar="FILE",
        help="atomically write the bound port here once listening "
        "(launchers poll this instead of parsing stdout)",
    )
    serve.add_argument("--batch-size", type=int, default=10_000,
                       help="pipeline batch-size knob (cost models)")
    serve.add_argument("--algorithm", choices=ALGORITHMS, default="pr")
    serve.add_argument("--mode", choices=sorted(MODES), default="abr_usc")
    serve.add_argument(
        "--telemetry", choices=TELEMETRY_LEVELS, default=None,
        help="instrumentation level (default: basic)",
    )
    serve.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="shard worker processes for the update phase",
    )
    serve.add_argument(
        "--shard-transport", choices=sorted(SHARD_TRANSPORTS), default=None,
        metavar="NAME", dest="shard_transport",
    )
    serve.add_argument(
        "--shard-policy", choices=sorted(PARTITION_POLICIES), default=None,
        metavar="NAME", dest="shard_policy",
    )
    serve.add_argument(
        "--adjacency", choices=sorted(ADJACENCY_FORMATS), default=None,
    )
    serve.add_argument(
        "--serve-batch", type=int, default=None, metavar="EDGES",
        help="micro-batch target size (default: --batch-size or "
        "$REPRO_SERVE_BATCH)",
    )
    serve.add_argument(
        "--serve-batch-min", type=int, default=None, metavar="EDGES",
        help="smallest CAD early-cut batch ($REPRO_SERVE_BATCH_MIN)",
    )
    serve.add_argument(
        "--flush-ms", type=float, default=None, metavar="MS",
        help="max milliseconds a buffered edge may linger "
        "($REPRO_SERVE_FLUSH_MS; default: 250)",
    )
    serve.add_argument(
        "--fixed-batching", action="store_true",
        help="disable the CAD-aware early cut (fixed-size micro-batches)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=None, metavar="N",
        help="bounded hand-off queue length in batches ($REPRO_SERVE_QUEUE)",
    )
    serve.add_argument(
        "--max-pending", type=int, default=None, metavar="EDGES",
        help="global admitted-but-not-visible cap "
        "($REPRO_SERVE_MAX_PENDING; default: 200000)",
    )
    serve.add_argument(
        "--fair-share", type=float, default=None, metavar="FRAC",
        help="fraction of the pending window one tenant may hold "
        "($REPRO_SERVE_FAIR_SHARE; default: 0.5)",
    )
    serve.add_argument(
        "--rate", type=float, default=None, metavar="EPS",
        help="per-tenant token-bucket rate in edges/s "
        "($REPRO_SERVE_RATE; default: 0 = unlimited)",
    )
    serve.add_argument(
        "--burst", type=float, default=None, metavar="EDGES",
        help="per-tenant bucket capacity ($REPRO_SERVE_BURST)",
    )
    serve.add_argument(
        "--max-delay", type=float, default=None, metavar="SECONDS",
        help="rate-limit waits longer than this reject with retry_after "
        "($REPRO_SERVE_MAX_DELAY; default: 5)",
    )
    serve.add_argument(
        "--checkpoint", metavar="DIR",
        help="checkpoint pipeline state into DIR while serving (and on "
        "graceful drain)",
    )
    serve.add_argument(
        "--every", type=int, default=50, metavar="N",
        help="micro-batches between checkpoints (default: 50)",
    )
    serve.add_argument(
        "--heartbeat", metavar="FILE",
        help="atomically rewrite a live heartbeat JSON per micro-batch",
    )
    serve.add_argument(
        "--prom", metavar="FILE",
        help="refresh a Prometheus textfile every micro-batch",
    )

    loadgen = sub.add_parser(
        "loadgen", help="drive a running `repro serve` with synthetic clients"
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, required=True)
    loadgen.add_argument(
        "--clients", type=int, default=2,
        help="concurrent ingest connections (default: 2)",
    )
    loadgen.add_argument(
        "--edges", type=int, default=20_000,
        help="edges per client (default: 20000)",
    )
    loadgen.add_argument(
        "--submit-size", type=int, default=500,
        help="edges per request (default: 500)",
    )
    loadgen.add_argument("--seed", type=int, default=7)
    loadgen.add_argument(
        "--query", choices=["pagerank_topk", "triangles", "degree"],
        default=None,
        help="also run a concurrent query client issuing this query",
    )
    loadgen.add_argument(
        "--query-interval", type=float, default=0.05, metavar="SECONDS",
    )
    loadgen.add_argument(
        "--json", action="store_true",
        help="print the full report as JSON (for scripts and benchmarks)",
    )

    character = sub.add_parser("characterize", help="RO trade-off study (Fig. 3 row)")
    character.add_argument("dataset", choices=sorted(DATASETS))
    character.add_argument("--num-batches", type=int, default=8)
    character.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes, one per batch size (0 = all cores)",
    )

    hau = sub.add_parser("hau", help="HAU vs ABR+USC on the simulated CMP")
    hau.add_argument("dataset", choices=sorted(DATASETS))
    hau.add_argument("--batch-size", type=int, default=1_000)
    hau.add_argument("--num-batches", type=int, default=12)

    oca = sub.add_parser("oca", help="OCA overlap/speedup study (Fig. 14 row)")
    oca.add_argument("dataset", choices=sorted(DATASETS))
    oca.add_argument("--num-batches", type=int, default=6)

    accuracy = sub.add_parser(
        "accuracy", help="ABR accuracy over the (lambda, TH) grid (Fig. 18)"
    )
    accuracy.add_argument("dataset", choices=sorted(DATASETS))
    accuracy.add_argument("--num-batches", type=int, default=6)

    sensitivity = sub.add_parser(
        "sensitivity", help="cost-constant robustness sweep"
    )
    sensitivity.add_argument("parameter")
    sensitivity.add_argument("--num-batches", type=int, default=4)
    sensitivity.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes, one per sweep cell (0 = all cores); a "
        "crashing cell is reported per-cell instead of killing the sweep",
    )

    fidelity = sub.add_parser(
        "fidelity", help="paper-reported vs measured summary"
    )
    fidelity.add_argument("--results", default="results")

    report = sub.add_parser(
        "report", help="analyze a recorded trace (two traces = A/B compare)"
    )
    report.add_argument("trace", help="trace file from `repro run --trace`")
    report.add_argument(
        "trace_b", nargs="?", default=None,
        help="second trace; compare A (first) against B with regression deltas",
    )
    report.add_argument(
        "--timeline", dest="timeline_out", metavar="OUT",
        help="re-export the trace's embedded flight-recorder timeline as "
        "Chrome trace-event JSON",
    )

    top = sub.add_parser(
        "top", help="live view of an in-flight run via its heartbeat file"
    )
    top.add_argument(
        "path",
        help="heartbeat file from `repro run --heartbeat` (or the "
        "directory containing heartbeat.json)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit instead of refreshing",
    )
    top.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="refresh period (default: 1.0)",
    )
    top.add_argument(
        "--max-age", type=float, default=30.0, metavar="SECONDS",
        help="flag the run as STALLED when the heartbeat is older than "
        "this (default: 30)",
    )

    tune = sub.add_parser(
        "tune", help="auto-tune policy knobs over a declared search space"
    )
    tune.add_argument("dataset", choices=sorted(DATASETS))
    tune.add_argument(
        "--space", default="demo",
        help="built-in space name (abr, demo, full) or a JSON space file "
        "(default: demo)",
    )
    tune.add_argument(
        "--optimizer", default="random",
        help="search strategy: random, grid, or tpe (default: random)",
    )
    tune.add_argument(
        "--trials", type=int, default=8,
        help="total trial budget, including the baseline trial 0 "
        "(default: 8)",
    )
    tune.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes evaluating trials (0 = all cores); a "
        "crashing trial is journaled as failed instead of killing the "
        "search",
    )
    tune.add_argument(
        "--objective", default="ingest_throughput",
        help="scoring objective: ingest_throughput, update_time, or "
        "ro_speedup (default: ingest_throughput)",
    )
    tune.add_argument("--batch-size", type=int, default=1_000)
    tune.add_argument("--num-batches", type=int, default=4)
    tune.add_argument("--algorithm", choices=ALGORITHMS, default="pr")
    tune.add_argument("--mode", choices=sorted(MODES), default="abr_usc")
    tune.add_argument(
        "--oca", action="store_true", help="enable compute aggregation"
    )
    tune.add_argument(
        "--seed", type=int, default=0,
        help="search seed (proposal randomness; trial streams keep the "
        "run seed)",
    )
    tune.add_argument(
        "--out", default="tune-out",
        help="output directory: journal.jsonl (the resumable trial log), "
        "trajectory.csv, best_config.json (default: tune-out)",
    )
    tune.add_argument(
        "--checkpoint-every", type=int, default=0,
        help="checkpoint each trial's pipeline every N batches into a "
        "per-trial subdirectory of OUT/checkpoints (0 = off)",
    )

    cache = sub.add_parser("cache", help="inspect or clear the stream cache")
    cache.add_argument(
        "--clear", action="store_true", help="delete all cached streams"
    )

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "datasets": _cmd_datasets,
        "run": _cmd_run,
        "serve": _cmd_serve,
        "loadgen": _cmd_loadgen,
        "characterize": _cmd_characterize,
        "hau": _cmd_hau,
        "oca": _cmd_oca,
        "accuracy": _cmd_accuracy,
        "sensitivity": _cmd_sensitivity,
        "fidelity": _cmd_fidelity,
        "report": _cmd_report,
        "top": _cmd_top,
        "tune": _cmd_tune,
        "cache": _cmd_cache,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
