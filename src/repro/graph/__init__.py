"""Dynamic graph data structures and batch statistics."""

from .base import BatchUpdateStats, DirectionStats, DynamicGraph, GraphDelta
from .adjacency_list import AdjacencyListGraph
from .degree_aware_hash import DegreeAwareHashGraph
from .edge_log import EdgeLogGraph
from .reference import ReferenceAdjacencyListGraph
from .snapshot import CSRSnapshot, DeltaSnapshotter, take_snapshot
from .stats import (
    FIG5_BUCKETS,
    DegreeMix,
    degree_counts,
    degree_histogram,
    degree_mix,
    top_degrees,
)

__all__ = [
    "BatchUpdateStats",
    "DirectionStats",
    "DynamicGraph",
    "GraphDelta",
    "AdjacencyListGraph",
    "ReferenceAdjacencyListGraph",
    "DegreeAwareHashGraph",
    "EdgeLogGraph",
    "CSRSnapshot",
    "DeltaSnapshotter",
    "take_snapshot",
    "FIG5_BUCKETS",
    "DegreeMix",
    "degree_counts",
    "degree_histogram",
    "degree_mix",
    "top_degrees",
]
