"""The ``repro report`` trace analyzer, against a committed fixture trace.

``tests/golden/trace_v2.jsonl`` is a recorded schema-v2 trace (fb @ 500,
pr/abr_usc/OCA, 4 batches, full telemetry).  Regenerate only when the
schema changes::

    PYTHONPATH=src python - <<'EOF'
    from repro.pipeline.config import RunConfig
    from repro.pipeline.tracing import TraceWriter
    config = RunConfig(dataset="fb", batch_size=500, algorithm="pr",
                       mode="abr_usc", num_batches=4, use_oca=True,
                       telemetry="full")
    with TraceWriter("tests/golden/trace_v2.jsonl") as trace:
        config.build_pipeline(trace=trace).run(config.num_batches)
    EOF
"""

from pathlib import Path

import pytest

from repro.errors import AnalysisError
from repro.telemetry.report import load_report, render_compare, render_report

FIXTURE = Path(__file__).resolve().parent / "golden" / "trace_v2.jsonl"


@pytest.fixture
def fixture_report():
    return load_report(FIXTURE)


def test_fixture_loads(fixture_report):
    assert fixture_report.document.schema_version == 2
    assert fixture_report.num_batches == 4
    assert fixture_report.summary is not None
    assert fixture_report.label == "fb @ 500 [pr, abr_usc]"
    assert fixture_report.total_update_time > 0
    assert fixture_report.wall_seconds is not None


def test_strategy_breakdown_partitions_batches(fixture_report):
    breakdown = fixture_report.strategy_breakdown()
    assert sum(count for count, _t in breakdown.values()) == 4
    assert sum(t for _c, t in breakdown.values()) == pytest.approx(
        fixture_report.total_update_time
    )


def test_render_report_sections(fixture_report):
    text = render_report(fixture_report)
    assert "trace report: fb @ 500 [pr, abr_usc]" in text
    assert "schema v2, 4 batch events" in text
    assert "modeled totals" in text
    assert "per-strategy modeled update breakdown" in text
    assert "wall-clock spans" in text
    assert "stage.update" in text
    assert "counters" in text
    assert "usc.hash_inserts" in text
    assert "decision ledger" in text
    assert "strategy selector:" in text
    assert "batches executed reordered:" in text


def test_render_report_without_summary(tmp_path, fixture_report):
    # v1-style trace: no telemetry summary -> modeled sections only.
    import dataclasses
    import json

    v1 = tmp_path / "v1.jsonl"
    v1.write_text(
        "".join(
            json.dumps(dataclasses.asdict(e)) + "\n"
            for e in fixture_report.events
        )
    )
    text = render_report(load_report(v1))
    assert "schema v1" in text
    assert "wall-clock spans" not in text
    assert "no telemetry summary in trace" in text


def test_render_compare_self_is_all_zero_deltas(fixture_report):
    text = render_compare(fixture_report, fixture_report)
    assert "A/B trace comparison" in text
    assert "positive delta = B slower" in text
    assert "+0.0" in text


def test_render_compare_shows_regressions(tmp_path, fixture_report):
    from repro.pipeline.config import RunConfig
    from repro.pipeline.tracing import TraceWriter

    config = RunConfig(dataset="fb", batch_size=500, algorithm="pr",
                       mode="baseline", num_batches=4, use_oca=True,
                       telemetry="full")
    path = tmp_path / "baseline.jsonl"
    with TraceWriter(path) as trace:
        config.build_pipeline(trace=trace).run(config.num_batches)
    text = render_compare(fixture_report, load_report(path))
    assert "update time (tu)" in text
    assert "batches via baseline" in text
    assert "batches via reorder+usc" in text


def test_load_report_missing_file(tmp_path):
    with pytest.raises(AnalysisError, match="no trace file"):
        load_report(tmp_path / "nope.jsonl")


# -- CLI ----------------------------------------------------------------------

def test_cli_report_single(capsys):
    from repro.cli import main

    assert main(["report", str(FIXTURE)]) == 0
    out = capsys.readouterr().out
    assert "trace report: fb @ 500 [pr, abr_usc]" in out
    assert "decision ledger" in out


def test_cli_report_compare(capsys):
    from repro.cli import main

    assert main(["report", str(FIXTURE), str(FIXTURE)]) == 0
    out = capsys.readouterr().out
    assert "A/B trace comparison" in out


def test_cli_run_trace_then_report(tmp_path, capsys):
    """The acceptance loop: record with `run --trace`, analyze with `report`."""
    from repro.cli import main

    path = tmp_path / "run.jsonl"
    assert main([
        "run", "fb", "--batch-size", "300", "--num-batches", "2",
        "--algorithm", "none", "--mode", "abr", "--trace", str(path),
    ]) == 0
    capsys.readouterr()
    assert main(["report", str(path)]) == 0
    out = capsys.readouterr().out
    assert "wall-clock spans" in out  # --trace defaults telemetry to full
    assert "counters" in out


def test_cli_run_prom_export(tmp_path, capsys):
    from repro.cli import main

    prom = tmp_path / "run.prom"
    assert main([
        "run", "fb", "--batch-size", "300", "--num-batches", "2",
        "--algorithm", "none", "--mode", "abr", "--prom", str(prom),
    ]) == 0
    assert "prometheus metrics" in capsys.readouterr().out
    content = prom.read_text()
    assert 'repro_pipeline_batches_total{dataset="fb",mode="abr"} 2' in content


def test_cli_run_telemetry_off_by_default(tmp_path, capsys):
    from repro.cli import main
    from repro.pipeline import config as config_mod

    captured = {}
    original = config_mod.RunConfig.build_pipeline

    def spy(self, *args, **kwargs):
        pipeline = original(self, *args, **kwargs)
        captured["telemetry"] = pipeline.telemetry
        return pipeline

    config_mod.RunConfig.build_pipeline = spy
    try:
        assert main([
            "run", "fb", "--batch-size", "300", "--num-batches", "1",
            "--algorithm", "none", "--mode", "baseline",
        ]) == 0
    finally:
        config_mod.RunConfig.build_pipeline = original
    assert not captured["telemetry"].enabled
