"""Immutable CSR snapshot of a dynamic graph for the compute phase.

The static algorithms (GAP-style PageRank / SSSP) iterate over the whole
graph; a CSR layout makes those sweeps cheap in numpy.  Incremental
algorithms read the dynamic structure directly and do not need a snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import DynamicGraph

__all__ = ["CSRSnapshot", "take_snapshot"]


@dataclass(frozen=True)
class CSRSnapshot:
    """CSR views of one graph snapshot (both directions).

    Attributes:
        num_vertices: vertex universe size.
        out_offsets/out_targets/out_weights: CSR of the out-adjacency.
        in_offsets/in_sources/in_weights: CSR of the in-adjacency.
    """

    num_vertices: int
    out_offsets: np.ndarray
    out_targets: np.ndarray
    out_weights: np.ndarray
    in_offsets: np.ndarray
    in_sources: np.ndarray
    in_weights: np.ndarray

    @property
    def num_edges(self) -> int:
        return len(self.out_targets)

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex."""
        return np.diff(self.out_offsets)

    def in_degrees(self) -> np.ndarray:
        """In-degree of every vertex."""
        return np.diff(self.in_offsets)

    def out_slice(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """(targets, weights) of v's out-edges."""
        a, b = self.out_offsets[v], self.out_offsets[v + 1]
        return self.out_targets[a:b], self.out_weights[a:b]

    def in_slice(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """(sources, weights) of v's in-edges."""
        a, b = self.in_offsets[v], self.in_offsets[v + 1]
        return self.in_sources[a:b], self.in_weights[a:b]


def _direction_csr(
    adjacency_of,  # callable: vertex -> dict[int, float]
    num_vertices: int,
    touched: list[int],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build CSR arrays for one direction."""
    degrees = np.zeros(num_vertices, dtype=np.int64)
    for v in touched:
        degrees[v] = len(adjacency_of(v))
    offsets = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(degrees, out=offsets[1:])
    total = int(offsets[-1])
    neighbors = np.empty(total, dtype=np.int64)
    weights = np.empty(total, dtype=np.float64)
    for v in touched:
        entry = adjacency_of(v)
        if not entry:
            continue
        a = offsets[v]
        b = a + len(entry)
        neighbors[a:b] = list(entry.keys())
        weights[a:b] = list(entry.values())
    return offsets, neighbors, weights


def take_snapshot(graph: DynamicGraph) -> CSRSnapshot:
    """Materialize the current state of ``graph`` as a CSR snapshot."""
    touched = graph.vertices_with_edges() if hasattr(graph, "vertices_with_edges") else list(range(graph.num_vertices))
    out_offsets, out_targets, out_weights = _direction_csr(
        graph.out_neighbors, graph.num_vertices, touched
    )
    in_offsets, in_sources, in_weights = _direction_csr(
        graph.in_neighbors, graph.num_vertices, touched
    )
    return CSRSnapshot(
        num_vertices=graph.num_vertices,
        out_offsets=out_offsets,
        out_targets=out_targets,
        out_weights=out_weights,
        in_offsets=in_offsets,
        in_sources=in_sources,
        in_weights=in_weights,
    )
