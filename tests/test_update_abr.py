"""ABR controller (Section 4.2, Fig. 7)."""

import pytest

from conftest import make_batch
from repro.costs import CostParameters
from repro.errors import ConfigurationError
from repro.graph.adjacency_list import AdjacencyListGraph
from repro.update.abr import ABRConfig, ABRController

COSTS = CostParameters()


def _controller(**overrides):
    defaults = dict(n=3, lam=4, threshold=5.0)
    defaults.update(overrides)
    return ABRController(ABRConfig(**defaults), COSTS, num_workers=8)


def _stats(graph, batch_id, hot=False):
    if hot:
        batch = make_batch([1] * 10, list(range(2, 12)), batch_id=batch_id)
    else:
        batch = make_batch([1, 2], [3, 4], batch_id=batch_id)
    return graph.apply_batch(batch)


def test_config_validation():
    with pytest.raises(ConfigurationError):
        ABRConfig(n=0)
    with pytest.raises(ConfigurationError):
        ABRConfig(lam=0)
    with pytest.raises(ConfigurationError):
        ABRConfig(threshold=0)


def test_default_mode_is_reorder():
    controller = _controller()
    assert controller.reordering is True


def test_batch_zero_is_active_and_runs_under_default():
    graph = AdjacencyListGraph(64)
    controller = _controller()
    decision = controller.step(_stats(graph, 0, hot=False))
    assert decision.active
    assert decision.reorder is True  # executed under the pre-existing default
    assert decision.cad is not None
    assert decision.instrumentation > 0


def test_flat_active_batch_turns_reordering_off_for_inert_batches():
    graph = AdjacencyListGraph(64)
    controller = _controller()
    controller.step(_stats(graph, 0, hot=False))
    assert controller.reordering is False
    inert = controller.step(_stats(graph, 1, hot=False))
    assert not inert.active
    assert inert.reorder is False
    assert inert.instrumentation == 0.0
    assert inert.cad is None


def test_hot_active_batch_turns_reordering_on():
    graph = AdjacencyListGraph(64)
    controller = _controller(threshold=5.0, lam=4)
    controller.step(_stats(graph, 0, hot=False))  # off
    controller.step(_stats(graph, 1, hot=True))   # inert: no decision change
    assert controller.reordering is False
    controller.step(_stats(graph, 3, hot=True))   # active (3 % 3 == 0)
    assert controller.reordering is True


def test_instrumentation_mode_follows_current_state():
    graph = AdjacencyListGraph(64)
    controller = _controller()
    reordered_cost = controller.step(_stats(graph, 0, hot=False)).instrumentation
    # Now reordering == False; the next active batch instruments via the
    # concurrent hash map, which is costlier.
    hashmap_cost = controller.step(_stats(graph, 3, hot=False)).instrumentation
    assert hashmap_cost > reordered_cost


def test_active_cadence_every_n():
    graph = AdjacencyListGraph(64)
    controller = _controller(n=4)
    flags = [controller.step(_stats(graph, i)).active for i in range(9)]
    assert flags == [True, False, False, False, True, False, False, False, True]
    assert controller.active_batches == 3
