"""Feedback-tuned ABR (the paper's future-work extension)."""

import pytest

from conftest import make_batch
from repro.costs import CostParameters
from repro.errors import ConfigurationError
from repro.exec_model.machine import MachineConfig
from repro.graph.adjacency_list import AdjacencyListGraph
from repro.update.abr import ABRConfig
from repro.update.engine import UpdateEngine, UpdatePolicy
from repro.update.feedback import FeedbackABRController, FeedbackConfig
from repro.update.result import STRATEGY_BASELINE, STRATEGY_RO

COSTS = CostParameters()
MACHINE = MachineConfig(name="t", num_workers=8)


def _hot_batch(batch_id, k=60):
    return make_batch([1] * k, [(batch_id * k + i) % 4096 for i in range(k)],
                      batch_id=batch_id)


def _flat_batch(batch_id, n=40):
    base = (batch_id * 97) % 2000
    return make_batch(
        [(base + i) % 4096 for i in range(n)],
        [(base + i + 2048) % 4096 for i in range(n)],
        batch_id=batch_id,
    )


def _engine(threshold, feedback=True, n=1):
    graph = AdjacencyListGraph(4096)
    config = ABRConfig(n=n, lam=4, threshold=threshold)
    controller = (
        FeedbackABRController(config, COSTS, MACHINE.num_workers)
        if feedback
        else None
    )
    return UpdateEngine(
        graph, UpdatePolicy.ABR, machine=MACHINE, costs=COSTS,
        abr_config=config, abr_controller=controller,
    )


def test_feedback_config_validation():
    with pytest.raises(ConfigurationError):
        FeedbackConfig(margin=0.0)
    with pytest.raises(ConfigurationError):
        FeedbackConfig(min_threshold=10, max_threshold=5)


def test_feedback_lowers_overly_high_threshold():
    """A TH calibrated far too high keeps reordering off on clearly
    reorder-friendly batches; feedback pulls it down within a few batches."""
    engine = _engine(threshold=1e6)
    for batch_id in range(6):
        engine.ingest(_hot_batch(batch_id))
    controller = engine.abr
    assert controller.threshold < 1e6
    assert controller.adjustments
    # After convergence the hot batches run reordered.
    late = engine.results[-1]
    assert late.strategy == STRATEGY_RO


def test_feedback_raises_overly_low_threshold():
    """A TH of ~0 reorders everything; flat batches teach it to stop."""
    engine = _engine(threshold=FeedbackConfig().min_threshold)
    for batch_id in range(6):
        engine.ingest(_flat_batch(batch_id))
    assert engine.results[-1].strategy == STRATEGY_BASELINE


def test_feedback_leaves_correct_threshold_alone():
    engine = _engine(threshold=465.0)
    for batch_id in range(4):
        engine.ingest(_flat_batch(batch_id))
    controller = engine.abr
    assert controller.threshold == 465.0
    assert controller.adjustments == []


def test_static_controller_hook_is_noop():
    engine = _engine(threshold=1e6, feedback=False)
    for batch_id in range(4):
        engine.ingest(_hot_batch(batch_id))
    # The static controller never adapts: still baseline everywhere.
    assert engine.abr.threshold == 1e6
    assert engine.results[-1].strategy == STRATEGY_BASELINE


def test_feedback_threshold_clamped():
    config = ABRConfig(n=1, lam=4, threshold=50.0)
    controller = FeedbackABRController(
        config, COSTS, 8, feedback=FeedbackConfig(min_threshold=40.0,
                                                  max_threshold=60.0),
    )
    graph = AdjacencyListGraph(4096)
    engine = UpdateEngine(
        graph, UpdatePolicy.ABR, machine=MACHINE, costs=COSTS,
        abr_config=config, abr_controller=controller,
    )
    for batch_id in range(5):
        engine.ingest(_hot_batch(batch_id, k=200))
    assert 40.0 <= controller.threshold <= 60.0
