"""Per-batch execution traces (JSONL).

A trace records, for every batch of a pipeline run, what the input-aware
machinery observed and decided — the CAD measured, the strategy executed,
the OCA overlap and deferral, and the modeled times.  Traces make runs
debuggable and comparable offline (`read_trace` + any JSONL tooling), and
the CLI exposes them via ``repro run --trace FILE``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path

from ..errors import AnalysisError
from .metrics import BatchMetrics

__all__ = ["TraceEvent", "TraceWriter", "read_trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One batch's trace record."""

    dataset: str
    batch_size: int
    algorithm: str
    mode: str
    batch_id: int
    strategy: str
    update_time: float
    compute_time: float
    abr_active: bool
    cad: float | None
    overlap: float | None
    deferred: bool
    aggregated_batches: int

    @classmethod
    def from_metrics(
        cls,
        metrics: BatchMetrics,
        dataset: str,
        batch_size: int,
        algorithm: str,
        mode: str,
        abr_active: bool,
    ) -> "TraceEvent":
        return cls(
            dataset=dataset,
            batch_size=batch_size,
            algorithm=algorithm,
            mode=mode,
            batch_id=metrics.batch_id,
            strategy=metrics.strategy,
            update_time=metrics.update_time,
            compute_time=metrics.compute_time,
            abr_active=abr_active,
            cad=metrics.cad,
            overlap=metrics.overlap,
            deferred=metrics.deferred,
            aggregated_batches=metrics.aggregated_batches,
        )


class TraceWriter:
    """Appends trace events to a JSONL file.

    Usable as a context manager::

        with TraceWriter("run.jsonl") as trace:
            StreamingPipeline(..., trace=trace).run(10)
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._handle = open(self.path, "w")
        self.events_written = 0

    def write(self, event: TraceEvent) -> None:
        self._handle.write(json.dumps(asdict(event)) + "\n")
        self.events_written += 1

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_trace(path: str | Path) -> list[TraceEvent]:
    """Load a JSONL trace back into events.

    Raises:
        AnalysisError: for missing files or malformed lines.
    """
    path = Path(path)
    if not path.exists():
        raise AnalysisError(f"no trace file at {path}")
    events = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(TraceEvent(**json.loads(line)))
            except (json.JSONDecodeError, TypeError) as exc:
                raise AnalysisError(
                    f"{path}:{line_number}: malformed trace line ({exc})"
                ) from exc
    return events
