"""EdgeLogGraph: GraphOne-style log + archiving cost model."""

import numpy as np
import pytest

from conftest import make_batch
from repro.errors import ConfigurationError
from repro.graph.adjacency_list import AdjacencyListGraph
from repro.graph.edge_log import EdgeLogGraph
from repro.update.engine import UpdateEngine, UpdatePolicy


def test_validation():
    with pytest.raises(ConfigurationError):
        EdgeLogGraph(10, archive_threshold=0)
    with pytest.raises(ConfigurationError):
        EdgeLogGraph(10, tail_filter_cost=0)
    with pytest.raises(ConfigurationError):
        EdgeLogGraph(10, archive_per_edge=-1)


def test_functionally_identical_to_adjacency_list(small_generator):
    log_graph = EdgeLogGraph(500, archive_threshold=1_500)
    plain = AdjacencyListGraph(500)
    for batch in small_generator.batches(1_000, 3):
        log_graph.apply_batch(batch)
        plain.apply_batch(batch)
    assert log_graph.num_edges == plain.num_edges
    for v in plain.vertices_with_edges():
        assert log_graph.out_neighbors(v) == plain.out_neighbors(v)


def test_log_accumulates_and_archives():
    graph = EdgeLogGraph(64, archive_threshold=5)
    graph.apply_batch(make_batch([1, 2], [3, 4], batch_id=0))
    assert graph.log_length == 2
    assert graph.archives_performed == 0
    graph.apply_batch(make_batch([5, 6, 7], [8, 9, 10], batch_id=1))
    assert graph.log_length == 0  # threshold hit -> archived
    assert graph.archives_performed == 1


def test_archive_overhead_reported_once():
    graph = EdgeLogGraph(64, archive_threshold=3, archive_per_edge=10.0)
    graph.apply_batch(make_batch([1, 2, 3], [4, 5, 6]))
    assert graph.consume_phase_overhead() == pytest.approx(30.0)
    assert graph.consume_phase_overhead() == 0.0


def test_search_cost_includes_tail_filter():
    graph = EdgeLogGraph(64, archive_threshold=1_000, tail_filter_cost=0.1)
    graph.apply_batch(make_batch([1] * 10, list(range(2, 12))))
    assert graph.log_length == 10
    k = np.array([3])
    cost_with_tail = graph.sum_search_cost(k, np.array([5]), np.array([3]), 2.0)
    plain = AdjacencyListGraph(64).sum_search_cost(
        k, np.array([5]), np.array([3]), 2.0
    )
    assert cost_with_tail[0] == pytest.approx(plain[0] + 3 * 10 * 0.1)


def test_engine_charges_maintenance_to_all_strategies():
    graph = EdgeLogGraph(64, archive_threshold=2, archive_per_edge=1000.0)
    engine = UpdateEngine(graph, UpdatePolicy.BASELINE)
    plain_engine = UpdateEngine(AdjacencyListGraph(64), UpdatePolicy.BASELINE)
    batch = make_batch([1, 2], [3, 4])
    result = engine.ingest(batch)
    plain = plain_engine.ingest(batch)
    # Archiving (2 edges x 1000) appears in the executed time and in every
    # alternative.
    assert result.time >= plain.time + 2000.0
    for label, value in result.alternatives.items():
        assert value >= plain.alternatives[label] + 2000.0


def test_adjacency_list_has_no_maintenance(tiny_graph):
    tiny_graph.apply_batch(make_batch([1], [2]))
    assert tiny_graph.consume_phase_overhead() == 0.0


def test_threshold_tradeoff_visible():
    """Small threshold: frequent archiving; big threshold: costly searches."""
    def total_time(threshold):
        graph = EdgeLogGraph(
            2_048, archive_threshold=threshold,
            tail_filter_cost=0.5, archive_per_edge=8.0,
        )
        engine = UpdateEngine(graph, UpdatePolicy.BASELINE)
        total = 0.0
        for i in range(8):
            batch = make_batch(
                [(i * 97 + j) % 2048 for j in range(200)],
                [(i * 97 + j + 1024) % 2048 for j in range(200)],
                batch_id=i,
            )
            total += engine.ingest(batch).time
        return total

    eager = total_time(threshold=100)
    lazy = total_time(threshold=10_000)
    balanced = total_time(threshold=800)
    assert balanced < max(eager, lazy)
