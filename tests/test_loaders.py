"""Edge-list file loading."""

import numpy as np
import pytest

from repro.datasets.loaders import read_edge_list, stream_from_file, write_edge_list
from repro.errors import ConfigurationError
from repro.graph.adjacency_list import AdjacencyListGraph


def test_roundtrip_unweighted(tmp_path):
    path = tmp_path / "edges.txt"
    src = np.array([0, 1, 2])
    dst = np.array([1, 2, 0])
    write_edge_list(path, src, dst)
    rs, rd, rw = read_edge_list(path)
    np.testing.assert_array_equal(rs, src)
    np.testing.assert_array_equal(rd, dst)
    assert (rw == 1.0).all()


def test_roundtrip_weighted(tmp_path):
    path = tmp_path / "edges.txt"
    write_edge_list(path, np.array([5]), np.array([7]), np.array([2.5]))
    rs, rd, rw = read_edge_list(path, weighted=True)
    assert rs.tolist() == [5] and rd.tolist() == [7] and rw.tolist() == [2.5]


def test_comments_and_blank_lines_skipped(tmp_path):
    path = tmp_path / "edges.txt"
    path.write_text("# SNAP header\n\n0 1\n# another\n1 2\n")
    src, dst, __ = read_edge_list(path)
    assert src.tolist() == [0, 1]
    assert dst.tolist() == [1, 2]


def test_malformed_line_rejected(tmp_path):
    path = tmp_path / "edges.txt"
    path.write_text("0\n")
    with pytest.raises(ConfigurationError, match="expected src dst"):
        read_edge_list(path)


def test_missing_weight_column_rejected(tmp_path):
    path = tmp_path / "edges.txt"
    path.write_text("0 1\n")
    with pytest.raises(ConfigurationError):
        read_edge_list(path, weighted=True)


def test_empty_file_rejected(tmp_path):
    path = tmp_path / "edges.txt"
    path.write_text("# only comments\n")
    with pytest.raises(ConfigurationError, match="no edges"):
        read_edge_list(path)


def test_stream_from_file_batches_and_universe(tmp_path):
    path = tmp_path / "edges.txt"
    write_edge_list(path, np.arange(10), np.arange(10) + 5)
    batches, num_vertices = stream_from_file(path, batch_size=4)
    assert num_vertices == 15
    assert [b.size for b in batches] == [4, 4, 2]
    graph = AdjacencyListGraph(num_vertices)
    for batch in batches:
        graph.apply_batch(batch)
    assert graph.num_edges == 10


def test_stream_from_file_shuffle_is_deterministic_permutation(tmp_path):
    path = tmp_path / "edges.txt"
    write_edge_list(path, np.arange(50), np.arange(50) + 50)
    plain, __ = stream_from_file(path, batch_size=50)
    shuffled_a, __ = stream_from_file(path, batch_size=50, shuffle=True, seed=3)
    shuffled_b, __ = stream_from_file(path, batch_size=50, shuffle=True, seed=3)
    assert not np.array_equal(plain[0].src, shuffled_a[0].src)
    np.testing.assert_array_equal(shuffled_a[0].src, shuffled_b[0].src)
    assert sorted(shuffled_a[0].src.tolist()) == sorted(plain[0].src.tolist())
