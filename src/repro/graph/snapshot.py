"""Immutable CSR snapshot of a dynamic graph for the compute phase.

The static algorithms (GAP-style PageRank / SSSP) iterate over the whole
graph; a CSR layout makes those sweeps cheap in numpy.  Incremental
algorithms read the dynamic structure directly and do not need a snapshot.

Two materialization paths exist:

* :func:`take_snapshot` — the reference full rebuild, walking every vertex
  with edges;
* :class:`DeltaSnapshotter` — caches the previous snapshot and patches only
  the CSR slices of vertices dirtied since (tracked by the graph), falling
  back to a full rebuild when the dirty fraction makes patching a loss.
  Both paths produce bit-identical arrays (``tests/test_perf_parity.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import chain

import numpy as np

from ..telemetry.core import as_telemetry
from .base import DynamicGraph

__all__ = ["CSRSnapshot", "take_snapshot", "DeltaSnapshotter"]


@dataclass(frozen=True)
class CSRSnapshot:
    """CSR views of one graph snapshot (both directions).

    Attributes:
        num_vertices: vertex universe size.
        out_offsets/out_targets/out_weights: CSR of the out-adjacency.
        in_offsets/in_sources/in_weights: CSR of the in-adjacency.
    """

    num_vertices: int
    out_offsets: np.ndarray
    out_targets: np.ndarray
    out_weights: np.ndarray
    in_offsets: np.ndarray
    in_sources: np.ndarray
    in_weights: np.ndarray

    @property
    def num_edges(self) -> int:
        return len(self.out_targets)

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex."""
        return np.diff(self.out_offsets)

    def in_degrees(self) -> np.ndarray:
        """In-degree of every vertex."""
        return np.diff(self.in_offsets)

    def out_slice(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """(targets, weights) of v's out-edges."""
        a, b = self.out_offsets[v], self.out_offsets[v + 1]
        return self.out_targets[a:b], self.out_weights[a:b]

    def in_slice(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """(sources, weights) of v's in-edges."""
        a, b = self.in_offsets[v], self.in_offsets[v + 1]
        return self.in_sources[a:b], self.in_weights[a:b]


def _direction_csr(
    adjacency_of,  # callable: vertex -> dict[int, float]
    num_vertices: int,
    touched: list[int],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build CSR arrays for one direction."""
    degrees = np.zeros(num_vertices, dtype=np.int64)
    for v in touched:
        degrees[v] = len(adjacency_of(v))
    offsets = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(degrees, out=offsets[1:])
    total = int(offsets[-1])
    neighbors = np.empty(total, dtype=np.int64)
    weights = np.empty(total, dtype=np.float64)
    for v in touched:
        entry = adjacency_of(v)
        if not entry:
            continue
        a = offsets[v]
        b = a + len(entry)
        neighbors[a:b] = list(entry.keys())
        weights[a:b] = list(entry.values())
    return offsets, neighbors, weights


def take_snapshot(graph: DynamicGraph) -> CSRSnapshot:
    """Materialize the current state of ``graph`` as a CSR snapshot."""
    touched = graph.vertices_with_edges() if hasattr(graph, "vertices_with_edges") else list(range(graph.num_vertices))
    out_offsets, out_targets, out_weights = _direction_csr(
        graph.out_neighbors, graph.num_vertices, touched
    )
    in_offsets, in_sources, in_weights = _direction_csr(
        graph.in_neighbors, graph.num_vertices, touched
    )
    return CSRSnapshot(
        num_vertices=graph.num_vertices,
        out_offsets=out_offsets,
        out_targets=out_targets,
        out_weights=out_weights,
        in_offsets=in_offsets,
        in_sources=in_sources,
        in_weights=in_weights,
    )


def _patch_direction(
    num_vertices: int,
    offsets: np.ndarray,
    neighbors: np.ndarray,
    weights: np.ndarray,
    adjacency_of,  # callable: vertex -> dict[int, float]
    delta,  # GraphDelta
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Rebuild one direction's CSR arrays from the previous ones plus a delta.

    Unchanged slices are gathered from the previous arrays with one
    vectorized indexed copy; appended edges (the journal) are scattered onto
    each owner's slice tail in application order; only *stale* vertices
    (weight changes, deletions) have their adjacency dicts re-read.  The
    result is bit-identical to a full rebuild because appends reproduce dict
    insertion order and both paths write entries in dict order.
    """
    app_owner, app_target, app_weight = delta.owners, delta.targets, delta.weights
    stale = delta.stale
    stale_mask = None
    entries: list[dict[int, float]] = []
    stale_arr = np.empty(0, dtype=np.int64)
    if stale:
        stale_arr = np.fromiter(stale, dtype=np.int64, count=len(stale))
        stale_arr.sort()
        stale_mask = np.zeros(num_vertices, dtype=bool)
        stale_mask[stale_arr] = True
        entries = [adjacency_of(v) for v in stale_arr.tolist()]
        keep = ~stale_mask[app_owner]
        app_owner = app_owner[keep]
        app_target = app_target[keep]
        app_weight = app_weight[keep]
    # Stable group-by-owner keeps each owner's appends in application order,
    # i.e. exactly the dict insertion order a full rebuild would walk.
    order = np.argsort(app_owner, kind="stable")
    app_owner = app_owner[order]
    app_target = app_target[order]
    app_weight = app_weight[order]
    old_degrees = np.diff(offsets)
    degrees = old_degrees.copy()
    if len(app_owner):
        app_verts, app_counts = np.unique(app_owner, return_counts=True)
        degrees[app_verts] += app_counts
    if stale:
        degrees[stale_arr] = np.fromiter(
            map(len, entries), dtype=np.int64, count=len(entries)
        )
    new_offsets = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(degrees, out=new_offsets[1:])
    total = int(new_offsets[-1])
    # Map every new position to its source position in the old arrays; fresh
    # positions (appended tails, stale slices) get overwritten below, so
    # their out-of-range source indices are clamped to 0 first.
    owner = np.repeat(np.arange(num_vertices, dtype=np.int64), degrees)
    positions = np.arange(total, dtype=np.int64)
    src_idx = positions + (offsets[:-1] - new_offsets[:-1])[owner]
    fresh = positions - new_offsets[:-1][owner] >= old_degrees[owner]
    if stale_mask is not None:
        fresh |= stale_mask[owner]
    src_idx[fresh] = 0
    if len(neighbors) == 0:
        new_neighbors = np.empty(total, dtype=np.int64)
        new_weights = np.empty(total, dtype=np.float64)
    else:
        new_neighbors = neighbors[src_idx]
        new_weights = weights[src_idx]
    if len(app_owner):
        seg_starts = np.cumsum(app_counts) - app_counts
        rank = np.arange(len(app_owner), dtype=np.int64) - np.repeat(seg_starts, app_counts)
        pos = new_offsets[app_owner] + old_degrees[app_owner] + rank
        new_neighbors[pos] = app_target
        new_weights[pos] = app_weight
    if stale:
        stale_pos = stale_mask[owner]
        new_neighbors[stale_pos] = list(
            chain.from_iterable(entry.keys() for entry in entries)
        )
        new_weights[stale_pos] = list(
            chain.from_iterable(entry.values() for entry in entries)
        )
    return new_offsets, new_neighbors, new_weights


class DeltaSnapshotter:
    """Incremental CSR snapshot producer for one dynamic graph.

    Enables delta tracking on the graph, caches the last
    :class:`CSRSnapshot`, and on the next request patches the cached arrays
    with the recorded :class:`~repro.graph.base.GraphDelta` (appended edges
    scatter in; stale vertices re-read).  Falls back to
    :func:`take_snapshot` when no previous snapshot exists, the graph does
    not track deltas, or the stale fraction exceeds ``rebuild_fraction`` of
    the touched vertices (re-reading ~everything is slower than rebuilding).

    Consuming the delta clears it on the graph, so attach at most one
    ``DeltaSnapshotter`` per graph and route all snapshot requests through
    it (mixing in direct ``take_snapshot`` calls is safe — they just won't
    reset the journal).

    Args:
        graph: the dynamic graph to snapshot.
        rebuild_fraction: stale-to-touched vertex ratio above which a full
            rebuild is cheaper than patching.
        telemetry: optional telemetry backend; rebuild/patch counters and
            the ``snapshot.materialize`` span land there.
    """

    def __init__(
        self,
        graph: DynamicGraph,
        rebuild_fraction: float = 0.25,
        telemetry=None,
    ):
        self.graph = graph
        self.rebuild_fraction = rebuild_fraction
        self.telemetry = as_telemetry(telemetry)
        graph.track_deltas(True)
        self._prev: CSRSnapshot | None = None
        #: Diagnostics: how many snapshots took each path.
        self.full_rebuilds = 0
        self.delta_patches = 0

    def invalidate(self) -> None:
        """Drop the cached snapshot (next request does a full rebuild)."""
        self._prev = None

    def snapshot(self) -> CSRSnapshot:
        """Materialize the graph's current state (patched when possible)."""
        with self.telemetry.span("snapshot.materialize"):
            return self._snapshot()

    def _snapshot(self) -> CSRSnapshot:
        graph = self.graph
        delta = graph.consume_delta()
        if delta is not None and self._prev is None:
            # First request: the journal predates any cached snapshot.
            delta = None
        if delta is not None:
            touched = graph.touched_count()
            budget = self.rebuild_fraction * 2 * (touched or graph.num_vertices)
            if len(delta[0].stale) + len(delta[1].stale) > budget:
                delta = None
        if delta is None:
            snap = take_snapshot(graph)
            self.full_rebuilds += 1
            self.telemetry.count("snapshot.full_rebuilds")
        else:
            prev = self._prev
            out_offsets, out_targets, out_weights = _patch_direction(
                prev.num_vertices, prev.out_offsets, prev.out_targets,
                prev.out_weights, graph.out_neighbors, delta[0],
            )
            in_offsets, in_sources, in_weights = _patch_direction(
                prev.num_vertices, prev.in_offsets, prev.in_sources,
                prev.in_weights, graph.in_neighbors, delta[1],
            )
            snap = CSRSnapshot(
                num_vertices=prev.num_vertices,
                out_offsets=out_offsets,
                out_targets=out_targets,
                out_weights=out_weights,
                in_offsets=in_offsets,
                in_sources=in_sources,
                in_weights=in_weights,
            )
            self.delta_patches += 1
            self.telemetry.count("snapshot.delta_patches")
        self._prev = snap
        return snap
