"""CLI command wiring."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_datasets_command(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    assert "Wiki-Talk" in out
    assert "friendster" in out


def test_run_command(capsys):
    code = main([
        "run", "fb", "--batch-size", "500", "--num-batches", "3",
        "--algorithm", "none", "--mode", "abr",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "update time" in out
    assert "fb @ 500" in out


def test_run_command_with_oca(capsys):
    code = main([
        "run", "fb", "--batch-size", "500", "--num-batches", "3",
        "--algorithm", "pr", "--mode", "abr_usc", "--oca",
    ])
    assert code == 0
    assert "oca" in capsys.readouterr().out


def test_run_rejects_unknown_dataset():
    with pytest.raises(SystemExit):
        main(["run", "not-a-dataset"])


def test_run_command_sharded(capsys):
    code = main([
        "run", "fb", "--batch-size", "500", "--num-batches", "2",
        "--algorithm", "none", "--mode", "abr", "--shards", "2",
    ])
    assert code == 0
    assert "fb @ 500" in capsys.readouterr().out


def test_run_command_sharded_transport_and_policy(capsys):
    code = main([
        "run", "fb", "--batch-size", "500", "--num-batches", "2",
        "--algorithm", "none", "--mode", "abr", "--shards", "2",
        "--shard-transport", "inproc", "--shard-policy", "greedy",
    ])
    assert code == 0
    assert "fb @ 500" in capsys.readouterr().out


def test_run_rejects_unknown_shard_transport():
    with pytest.raises(SystemExit):
        main([
            "run", "fb", "--shards", "2", "--shard-transport", "udp",
        ])


def test_run_rejects_unknown_shard_policy():
    with pytest.raises(SystemExit):
        main([
            "run", "fb", "--shards", "2", "--shard-policy", "metis",
        ])


def test_run_shards_rejected_for_multiple_datasets(capsys):
    code = main([
        "run", "fb", "wiki", "--batch-size", "500", "--num-batches", "2",
        "--algorithm", "none", "--mode", "abr", "--shards", "2",
    ])
    assert code == 2
    assert "shards" in capsys.readouterr().err


def test_characterize_command(capsys):
    assert main(["characterize", "fb", "--num-batches", "2"]) == 0
    out = capsys.readouterr().out
    assert "RO characterization" in out
    assert "adverse" in out or "friendly" in out


def test_hau_command(capsys):
    code = main(["hau", "fb", "--batch-size", "500", "--num-batches", "3"])
    assert code == 0
    out = capsys.readouterr().out
    assert "update speedup" in out
    assert "Fig. 19" in out
    assert "Fig. 20" in out
