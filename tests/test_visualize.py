"""ASCII chart rendering."""

import pytest

from repro.analysis.visualize import bar_chart, grouped_bar_chart
from repro.errors import AnalysisError


def test_bar_chart_basic():
    out = bar_chart(["a", "bb"], [1.0, 2.0], title="T", width=10)
    lines = out.splitlines()
    assert lines[0] == "T"
    assert lines[1].startswith(" a") and "1.00" in lines[1]
    # The longest bar fills the width.
    assert lines[2].count("#") == 10
    assert lines[1].count("#") == 5


def test_bar_chart_baseline_marker():
    out = bar_chart(["x"], [2.0], width=10, baseline=1.0)
    assert "|" in out


def test_bar_chart_zero_value_has_no_bar():
    out = bar_chart(["z", "y"], [0.0, 1.0], width=10)
    z_line = out.splitlines()[0]
    assert "#" not in z_line


def test_bar_chart_validation():
    with pytest.raises(AnalysisError):
        bar_chart(["a"], [1.0, 2.0])
    with pytest.raises(AnalysisError):
        bar_chart([], [])
    with pytest.raises(AnalysisError):
        bar_chart(["a"], [-1.0])


def test_grouped_bar_chart():
    out = grouped_bar_chart(
        ["g1", "g2"],
        {"base": [1.0, 2.0], "ours": [2.0, 4.0]},
        title="G",
        width=8,
    )
    assert "g1:" in out and "g2:" in out
    assert out.count("base") == 2 and out.count("ours") == 2


def test_grouped_bar_chart_validation():
    with pytest.raises(AnalysisError):
        grouped_bar_chart(["g"], {})
    with pytest.raises(AnalysisError):
        grouped_bar_chart(["g"], {"s": [1.0, 2.0]})
