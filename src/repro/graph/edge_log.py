"""GraphOne-style edge-log structure (Section 6.2.3's framework discussion).

GraphOne ingests updates into a global circular *edge log* and periodically
*archives* the logged edges into per-vertex adjacency lists ("edge
sharding", which is the batch-reordering operation the paper isolates).
Between archives, a duplicate check must consult the indexed adjacency *and*
filter the unarchived log tail.

We model that cost structure on top of the adjacency list's functional
behaviour (state is merged eagerly so snapshots stay exact; only the modeled
costs differ):

* each duplicate-check search pays an extra tail-filter term proportional to
  the current unarchived log length (cheap per element — the log is scanned
  sequentially and SIMD-filterable — but charged per search);
* when the log reaches ``archive_threshold`` edges, an archiving pass runs
  (per-edge shard-and-append cost), reported through
  :meth:`consume_phase_overhead` and charged to the triggering batch.

The trade-off this exposes: a large threshold amortizes archiving but makes
every search pay a long tail filter — the knob GraphOne tunes.
"""

from __future__ import annotations

import numpy as np

from ..datasets.stream import Batch
from ..errors import ConfigurationError
from .adjacency_list import AdjacencyListGraph
from .base import BatchUpdateStats

__all__ = ["EdgeLogGraph"]


class EdgeLogGraph(AdjacencyListGraph):
    """Adjacency storage fed through a GraphOne-style edge log.

    Args:
        num_vertices: vertex id universe.
        archive_threshold: logged edges that trigger an archiving pass.
        tail_filter_cost: per-logged-edge cost added to each duplicate-check
            search (sequential SIMD filter, so far below the adjacency scan's
            per-element cost).
        archive_per_edge: per-edge cost of the archiving pass (sort into
            shards + append to adjacencies).
    """

    def __init__(
        self,
        num_vertices: int,
        archive_threshold: int = 65_536,
        tail_filter_cost: float = 0.05,
        archive_per_edge: float = 8.0,
    ):
        super().__init__(num_vertices)
        if archive_threshold < 1:
            raise ConfigurationError(
                f"archive_threshold must be >= 1, got {archive_threshold}"
            )
        if tail_filter_cost <= 0 or archive_per_edge <= 0:
            raise ConfigurationError(
                "tail_filter_cost and archive_per_edge must be positive"
            )
        self.archive_threshold = archive_threshold
        self.tail_filter_cost = tail_filter_cost
        self.archive_per_edge = archive_per_edge
        self.log_length = 0
        self.archives_performed = 0
        self._pending_overhead = 0.0

    def apply_batch(self, batch: Batch) -> BatchUpdateStats:
        stats = super().apply_batch(batch)
        self.log_length += batch.size
        if self.log_length >= self.archive_threshold:
            self._pending_overhead += self.log_length * self.archive_per_edge
            self.archives_performed += 1
            self.log_length = 0
        return stats

    def consume_phase_overhead(self) -> float:
        overhead = self._pending_overhead
        self._pending_overhead = 0.0
        return overhead

    def sum_search_cost(
        self,
        batch_degree: np.ndarray,
        length_before: np.ndarray,
        new_edges: np.ndarray,
        per_element: float,
    ) -> np.ndarray:
        base = super().sum_search_cost(
            batch_degree, length_before, new_edges, per_element
        )
        # Every search additionally filters the unarchived log tail.
        tail = self.log_length * self.tail_filter_cost
        return base + batch_degree.astype(np.float64) * tail
