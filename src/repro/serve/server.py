"""The ``repro serve`` asyncio TCP server and its pipeline driver thread.

Architecture (one process, two execution domains):

* **Event loop** (asyncio): accepts connections, speaks the line-JSON
  protocol (one JSON object per line, one reply line per request), runs
  admission control, appends admitted edges to the
  :class:`~repro.serve.admission.MicroBatcher` and cuts micro-batches into
  a bounded hand-off queue.  A full queue is backpressure: the cut waits,
  the buffer absorbs new edges, and once the global pending window fills
  the admission gate makes *clients* wait.

* **Driver thread**: pulls cut batches off the queue and feeds them to the
  existing :class:`~repro.pipeline.runner.StreamingPipeline` via
  ``step(batch=...)`` — the same five-stage pipeline the batch CLI runs,
  so everything (ABR/USC/OCA, telemetry, sharding, checkpoints) works
  unchanged.  Between steps it answers queued queries against the latest
  completed snapshot, writes periodic checkpoints, releases admission
  window space, and beats the heartbeat monitor.

Visibility is a watermark: every admitted edge gets a global sequence
number; ``visible_seq`` advances to a batch's last edge when its step
completes, and the ``(seq, admit-time)`` markers that fall below the
watermark become ingest-to-visible latency samples (``stats`` reports
their rolling p50/p95/p99 — the load generator's headline number).

Graceful drain (SIGINT/SIGTERM or :meth:`ServeServer.drain`): admission
starts rejecting with ``"draining"``, the partial buffer is flushed as a
final batch, the driver finishes the queue, writes a final checkpoint,
and the process exits 0.
"""

from __future__ import annotations

import asyncio
import json
import queue
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..pipeline.config import RunConfig
from ..telemetry.heartbeat import _quantile
from .admission import AdmissionController, MicroBatcher, PendingBatch

__all__ = [
    "ServeServer",
    "ServeSettings",
    "ServerHandle",
    "start_server_thread",
]

#: Sentinel closing the driver's work queue.
_STOP = object()

#: Rolling window of ingest-to-visible latency samples.
_LATENCY_WINDOW = 4096


def _env(name: str, default, cast):
    import os

    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return cast(raw)
    except ValueError:
        return default


@dataclass
class ServeSettings:
    """Service knobs, separate from the pipeline's :class:`RunConfig`.

    Every field has a ``REPRO_SERVE_*`` environment override (applied by
    :meth:`from_env`; explicit CLI flags win over the environment).

    Attributes:
        batch_target: micro-batch size cap (edges) — the throughput cut.
        batch_min: smallest CAD early-cut batch (noise floor).
        flush_interval: max seconds a buffered edge may linger.
        adaptive: CAD-aware batch sizing (False = fixed-size cuts).
        queue_depth: bounded hand-off queue length (batches).
        max_pending: global admitted-but-not-visible edge cap.
        fair_share: fraction of ``max_pending`` one tenant may hold.
        rate: per-tenant token-bucket rate, edges/second (0 = unlimited).
        burst: per-tenant bucket capacity (None = one second of rate).
        max_delay: rate-limit waits longer than this reject instead.
        checkpoint_dir / checkpoint_every / checkpoint_keep: durability
            (``checkpoint_every`` counts micro-batches; 0 disables).
        capture: record every admitted edge and batch boundary (the
            offline-replay parity harness; costs memory, tests only).
    """

    batch_target: int = 10_000
    batch_min: int = 512
    flush_interval: float = 0.25
    adaptive: bool = True
    queue_depth: int = 8
    max_pending: int = 200_000
    fair_share: float = 0.5
    rate: float = 0.0
    burst: float | None = None
    max_delay: float = 5.0
    checkpoint_dir: str | None = None
    checkpoint_every: int = 0
    checkpoint_keep: int = 3
    capture: bool = False

    @classmethod
    def from_env(cls, **overrides) -> "ServeSettings":
        """Defaults ← ``REPRO_SERVE_*`` environment ← explicit overrides."""
        values = {
            "batch_target": _env("REPRO_SERVE_BATCH", cls.batch_target, int),
            "batch_min": _env("REPRO_SERVE_BATCH_MIN", cls.batch_min, int),
            "flush_interval": _env(
                "REPRO_SERVE_FLUSH_MS", cls.flush_interval * 1000.0, float
            ) / 1000.0,
            "queue_depth": _env("REPRO_SERVE_QUEUE", cls.queue_depth, int),
            "max_pending": _env(
                "REPRO_SERVE_MAX_PENDING", cls.max_pending, int
            ),
            "fair_share": _env(
                "REPRO_SERVE_FAIR_SHARE", cls.fair_share, float
            ),
            "rate": _env("REPRO_SERVE_RATE", cls.rate, float),
            "burst": _env("REPRO_SERVE_BURST", cls.burst, float),
            "max_delay": _env("REPRO_SERVE_MAX_DELAY", cls.max_delay, float),
        }
        values.update(
            {k: v for k, v in overrides.items() if v is not None}
        )
        return cls(**values)


@dataclass
class _ServeState:
    """Watermarks and service counters, shared across the two domains."""

    lock: threading.Lock = field(default_factory=threading.Lock)
    admitted_seq: int = 0
    visible_seq: int = 0
    batches_done: int = 0
    queries_served: int = 0
    edges_rejected_requests: int = 0
    latencies: list[float] = field(default_factory=list)
    batch_sizes: list[int] = field(default_factory=list)

    def latency_quantiles(self) -> dict[str, float]:
        with self.lock:
            window = list(self.latencies)
        return {
            "p50": _quantile(window, 0.50),
            "p95": _quantile(window, 0.95),
            "p99": _quantile(window, 0.99),
            "samples": len(window),
        }


class _PipelineDriver(threading.Thread):
    """Owns the pipeline: steps batches, answers queries, checkpoints."""

    def __init__(self, server: "ServeServer"):
        super().__init__(name="repro-serve-driver", daemon=True)
        self._server = server
        self.error: BaseException | None = None

    def run(self) -> None:  # pragma: no cover - exercised via the server
        try:
            self._loop()
        except BaseException as exc:
            self.error = exc
            self._server._driver_failed(exc)

    def _loop(self) -> None:
        server = self._server
        while True:
            self._answer_pending_queries()
            try:
                item = server._batch_queue.get(timeout=0.02)
            except queue.Empty:
                continue
            if item is _STOP:
                break
            self._apply(item)
        self._answer_pending_queries()
        if (
            server.settings.checkpoint_dir is not None
            and server.state.batches_done > server._last_checkpoint_batch
        ):
            self._checkpoint()

    def _apply(self, pending: PendingBatch) -> None:
        server = self._server
        pipeline = server.pipeline
        started = time.perf_counter()
        from ..datasets.stream import Batch

        batch = Batch(
            batch_id=pipeline.cursor,
            src=pending.src,
            dst=pending.dst,
            weight=pending.weight,
            is_delete=pending.is_delete,
        )
        pipeline.step(batch=batch)
        wall = time.perf_counter() - started
        now = time.monotonic()
        state = server.state
        with state.lock:
            state.visible_seq = pending.seq_end
            state.batches_done += 1
            for __, t_admit in pending.markers:
                state.latencies.append(max(0.0, now - t_admit))
            del state.latencies[:-_LATENCY_WINDOW]
            if server.settings.capture:
                state.batch_sizes.append(pending.size)
            batches_done = state.batches_done
        server.admission.release(pending.tenant_counts)
        tel = pipeline.telemetry
        if tel.enabled:
            tel.count("serve.batches")
            tel.count("serve.edges", pending.size)
            tel.count(f"serve.cut.{pending.cut_reason}")
            tel.gauge("serve.queue_depth", server._batch_queue.qsize())
            tel.gauge("serve.pending_edges", server.admission.pending_total)
        settings = server.settings
        if (
            settings.checkpoint_dir is not None
            and settings.checkpoint_every > 0
            and batches_done - server._last_checkpoint_batch
            >= settings.checkpoint_every
        ):
            self._checkpoint()
        if server.monitor is not None:
            server.monitor.beat(
                tel,
                batch_id=batch.batch_id,
                batch_edges=pending.size,
                wall_seconds=wall,
                serve=server._serve_heartbeat_section(),
            )

    def _checkpoint(self) -> None:
        server = self._server
        server.pipeline.save_checkpoint(
            server.settings.checkpoint_dir, keep=server.settings.checkpoint_keep
        )
        server._last_checkpoint_batch = server.state.batches_done
        if server.monitor is not None:
            server.monitor.note_checkpoint()

    # -- queries --------------------------------------------------------------
    def _answer_pending_queries(self) -> None:
        server = self._server
        while True:
            try:
                request, future = server._query_queue.get_nowait()
            except queue.Empty:
                return
            if future.cancelled():
                continue
            try:
                future.set_result(self._answer(request))
            except Exception as exc:
                future.set_result(
                    {"ok": False, "error": "query_failed", "detail": str(exc)}
                )

    def _answer(self, request: dict) -> dict:
        server = self._server
        pipeline = server.pipeline
        what = request.get("what")
        reply: dict = {"ok": True, "what": what}
        if what == "pagerank_topk":
            if pipeline.algorithm != "pr":
                return _query_error(
                    f"pagerank_topk needs algorithm 'pr', serving "
                    f"{pipeline.algorithm!r}"
                )
            engine = getattr(pipeline.compute, "engine", None)
            if engine is None:
                reply["ranks"] = []
            else:
                values = engine.as_array()
                k = max(1, min(int(request.get("k", 10)), len(values)))
                top = np.argpartition(-values, k - 1)[:k]
                top = top[np.argsort(-values[top], kind="stable")]
                reply["ranks"] = [
                    [int(v), float(values[v])] for v in top
                ]
        elif what == "triangles":
            if pipeline.algorithm != "triangles":
                return _query_error(
                    f"triangles needs algorithm 'triangles', serving "
                    f"{pipeline.algorithm!r}"
                )
            count = getattr(pipeline.compute, "count", None)
            reply["count"] = int(count) if count is not None else 0
        elif what == "degree":
            try:
                vertex = int(request.get("vertex", -1))
            except (TypeError, ValueError):
                return _query_error("degree needs an integer 'vertex'")
            if not 0 <= vertex < pipeline.graph.num_vertices:
                return _query_error(
                    f"vertex {vertex} outside [0, {pipeline.graph.num_vertices})"
                )
            out_adj, in_adj = pipeline.graph.adjacency_views()
            empty: dict = {}
            reply["vertex"] = vertex
            reply["out_degree"] = len(out_adj.get(vertex, empty))
            reply["in_degree"] = len(in_adj.get(vertex, empty))
        else:
            return _query_error(f"unknown query {what!r}")
        state = server.state
        with state.lock:
            state.queries_served += 1
            reply["watermark"] = {
                "admitted_seq": state.admitted_seq,
                "visible_seq": state.visible_seq,
                "batches": state.batches_done,
            }
        tel = pipeline.telemetry
        if tel.enabled:
            tel.count("serve.queries")
        return reply


def _query_error(detail: str) -> dict:
    return {"ok": False, "error": "bad_query", "detail": detail}


class ServeServer:
    """The live ingest service; see the module docstring for the shape.

    Args:
        config: the pipeline's run configuration (dataset supplies the
            vertex universe; ``num_batches`` is ignored — serving is
            open-ended).
        settings: service knobs (:class:`ServeSettings`).
        monitor: optional
            :class:`~repro.telemetry.heartbeat.HeartbeatMonitor` beaten
            after every applied micro-batch.
    """

    def __init__(
        self,
        config: RunConfig,
        settings: ServeSettings | None = None,
        *,
        monitor=None,
    ):
        self.config = config
        self.settings = settings or ServeSettings()
        self.monitor = monitor
        self.pipeline = config.build_pipeline()
        abr = config.abr
        from ..update.abr import ABRConfig

        abr = abr or ABRConfig()
        self.batcher = MicroBatcher(
            target_edges=self.settings.batch_target,
            min_edges=min(self.settings.batch_min, self.settings.batch_target),
            flush_interval=self.settings.flush_interval,
            adaptive=self.settings.adaptive,
            lam=abr.lam,
            threshold=abr.threshold,
        )
        self.admission = AdmissionController(
            max_pending=self.settings.max_pending,
            fair_share=self.settings.fair_share,
            rate=self.settings.rate,
            burst=self.settings.burst,
            max_delay=self.settings.max_delay,
        )
        self.state = _ServeState()
        self._batch_queue: queue.Queue = queue.Queue(
            maxsize=max(1, self.settings.queue_depth)
        )
        self._query_queue: queue.Queue = queue.Queue()
        self._driver = _PipelineDriver(self)
        self._server: asyncio.AbstractServer | None = None
        self._flusher: asyncio.Task | None = None
        self._draining = False
        self._drained = asyncio.Event()
        self._last_checkpoint_batch = 0
        self._clients = 0
        #: Arrival-order record of every admitted edge (capture mode).
        self.captured: dict[str, list] | None = (
            {"src": [], "dst": [], "weight": [], "is_delete": []}
            if self.settings.capture
            else None
        )

    # -- lifecycle ------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind, start the driver thread and flusher; returns (host, port)."""
        if self._server is not None:
            raise ConfigurationError("server already started")
        self._driver.start()
        self._server = await asyncio.start_server(
            self._handle_client, host, port
        )
        self._flusher = asyncio.ensure_future(self._flush_loop())
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def drain(self) -> None:
        """Graceful shutdown: reject new edges, flush, checkpoint, stop.

        Idempotent; safe to call from a signal handler task.  On return
        every admitted edge is visible, the final checkpoint (when
        enabled) is on disk, and the driver thread has exited.
        """
        if self._draining:
            await self._drained.wait()
            return
        self._draining = True
        self.admission.start_drain()
        if self._server is not None:
            self._server.close()
        if self._flusher is not None:
            self._flusher.cancel()
        if self.batcher.size > 0:
            await self._enqueue(self.batcher.cut("drain"))
        await self._put_queue_item(_STOP)
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._driver.join)
        if self._server is not None:
            await self._server.wait_closed()
        close = getattr(self.pipeline, "close", None)
        if close is not None:  # sharded pipelines own worker processes
            close()
        self._drained.set()

    def _driver_failed(self, exc: BaseException) -> None:
        # Driver death must not hang clients: fail queued queries.
        while True:
            try:
                __, future = self._query_queue.get_nowait()
            except queue.Empty:
                break
            if not future.done():
                future.set_result(
                    {"ok": False, "error": "driver_failed", "detail": str(exc)}
                )

    # -- batching -------------------------------------------------------------
    async def _put_queue_item(self, item) -> None:
        """Bounded-queue put that never blocks the event loop.

        The driver is the only consumer and the event loop the only
        producer, so full → poll is race-free backpressure.
        """
        while True:
            if self._driver.error is not None:
                raise ConfigurationError(
                    f"pipeline driver died: {self._driver.error!r}"
                )
            try:
                self._batch_queue.put_nowait(item)
                return
            except queue.Full:
                await asyncio.sleep(0.005)

    async def _enqueue(self, pending: PendingBatch) -> None:
        await self._put_queue_item(pending)

    async def _maybe_cut(self) -> None:
        reason = self.batcher.cut_due()
        if reason is not None:
            await self._enqueue(self.batcher.cut(reason))

    async def _flush_loop(self) -> None:
        """Time-based cuts for trickling streams (nothing else may fire)."""
        interval = max(0.01, self.settings.flush_interval / 4.0)
        while True:
            await asyncio.sleep(interval)
            if not self._draining:
                await self._maybe_cut()

    # -- protocol -------------------------------------------------------------
    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        peer = writer.get_extra_info("peername")
        tenant = f"{peer[0]}:{peer[1]}" if peer else "anonymous"
        self._clients += 1
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise ValueError("request must be a JSON object")
                except (ValueError, UnicodeDecodeError):
                    await self._reply(
                        writer, {"ok": False, "error": "bad_json"}
                    )
                    continue
                op = request.get("op")
                if op == "hello":
                    tenant = str(request.get("tenant") or tenant)
                    await self._reply(writer, {
                        "ok": True,
                        "server": "repro-serve",
                        "dataset": self.config.dataset,
                        "algorithm": self.config.algorithm,
                        "mode": self.config.mode,
                        "num_vertices": self.pipeline.graph.num_vertices,
                        "tenant": tenant,
                    })
                elif op == "edges":
                    await self._handle_edges(request, tenant, writer)
                elif op == "query":
                    await self._handle_query(request, writer)
                elif op == "stats":
                    await self._reply(writer, self._stats())
                elif op == "flush":
                    if self.batcher.size > 0 and not self._draining:
                        await self._enqueue(self.batcher.cut("flush"))
                    await self._reply(writer, {"ok": True})
                else:
                    await self._reply(
                        writer, {"ok": False, "error": "unknown_op", "op": op}
                    )
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            self._clients -= 1
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    @staticmethod
    async def _reply(writer: asyncio.StreamWriter, payload: dict) -> None:
        writer.write(json.dumps(payload).encode() + b"\n")
        await writer.drain()

    async def _handle_edges(self, request: dict, tenant: str,
                            writer: asyncio.StreamWriter) -> None:
        edges = request.get("edges")
        if not isinstance(edges, list) or not edges:
            await self._reply(
                writer, {"ok": False, "error": "bad_edges",
                         "detail": "edges must be a non-empty list"}
            )
            return
        try:
            src = np.asarray([e[0] for e in edges], dtype=np.int64)
            dst = np.asarray([e[1] for e in edges], dtype=np.int64)
            weight = np.asarray(
                [e[2] if len(e) > 2 else 1.0 for e in edges], dtype=np.float64
            )
            deletes = [bool(e[3]) if len(e) > 3 else False for e in edges]
        except (TypeError, ValueError, IndexError):
            await self._reply(
                writer, {"ok": False, "error": "bad_edges",
                         "detail": "each edge is [src, dst, weight?, delete?]"}
            )
            return
        nv = self.pipeline.graph.num_vertices
        lo = int(min(src.min(), dst.min()))
        hi = int(max(src.max(), dst.max()))
        if lo < 0 or hi >= nv:
            await self._reply(
                writer, {"ok": False, "error": "vertex_out_of_range",
                         "detail": f"vertex ids must lie in [0, {nv})"}
            )
            return
        n = len(edges)
        while True:
            decision = self.admission.admit(tenant, n)
            if decision.admitted:
                break
            if decision.reject:
                with self.state.lock:
                    self.state.edges_rejected_requests += 1
                await self._reply(writer, {
                    "ok": False,
                    "error": decision.reason,
                    "retry_after": round(decision.delay, 4),
                })
                return
            await asyncio.sleep(decision.delay)
        # Admitted: append + sequence assignment happen synchronously on
        # the event loop, so the arrival order is the admission order —
        # the property the offline-replay parity invariant rests on.
        is_delete = deletes if any(deletes) else None
        seq_end = self.batcher.append(
            tenant, src, dst, weight=weight, is_delete=is_delete
        )
        with self.state.lock:
            self.state.admitted_seq = seq_end
            visible = self.state.visible_seq
        if self.captured is not None:
            self.captured["src"].extend(src.tolist())
            self.captured["dst"].extend(dst.tolist())
            self.captured["weight"].extend(weight.tolist())
            self.captured["is_delete"].extend(deletes)
        await self._maybe_cut()
        await self._reply(writer, {
            "ok": True,
            "accepted": n,
            "seq": seq_end,
            "watermark": visible,
        })

    async def _handle_query(self, request: dict,
                            writer: asyncio.StreamWriter) -> None:
        import concurrent.futures

        if self._draining:
            await self._reply(
                writer, {"ok": False, "error": "draining"}
            )
            return
        if self._driver.error is not None:
            await self._reply(writer, {
                "ok": False, "error": "driver_failed",
                "detail": str(self._driver.error),
            })
            return
        future: concurrent.futures.Future = concurrent.futures.Future()
        self._query_queue.put((request, future))
        reply = await asyncio.wrap_future(future)
        await self._reply(writer, reply)

    def _stats(self) -> dict:
        state = self.state
        with state.lock:
            payload = {
                "ok": True,
                "admitted_seq": state.admitted_seq,
                "visible_seq": state.visible_seq,
                "lag_edges": state.admitted_seq - state.visible_seq,
                "batches": state.batches_done,
                "queries_served": state.queries_served,
                "rejected_requests": state.edges_rejected_requests,
                "clients": self._clients,
                "draining": self._draining,
            }
        payload["queue_depth"] = self._batch_queue.qsize()
        payload["buffer_edges"] = self.batcher.size
        payload["buffer_cad"] = round(self.batcher.cad, 3)
        payload["cut_reasons"] = dict(self.batcher.cut_reasons)
        payload["ingest_to_visible_s"] = self.state.latency_quantiles()
        payload["admission"] = self.admission.stats()
        return payload

    def _serve_heartbeat_section(self) -> dict:
        """The ``serve`` block of the heartbeat payload."""
        state = self.state
        with state.lock:
            section = {
                "queue_depth": self._batch_queue.qsize(),
                "pending_edges": self.admission.pending_total,
                "admitted_seq": state.admitted_seq,
                "visible_seq": state.visible_seq,
                "queries_served": state.queries_served,
                "clients": self._clients,
            }
        latency = self.state.latency_quantiles()
        section["ingest_to_visible_p99"] = latency["p99"]
        return section


# -- in-thread harness (tests, benchmarks, loadgen-managed servers) -----------


class ServerHandle:
    """A server running on a dedicated event-loop thread.

    Attributes:
        server: the :class:`ServeServer` (its state is safe to *read*
            after :meth:`stop`).
        host / port: the bound address.
    """

    def __init__(self, server: ServeServer, host: str, port: int,
                 loop: asyncio.AbstractEventLoop, thread: threading.Thread,
                 stop_event: asyncio.Event):
        self.server = server
        self.host = host
        self.port = port
        self._loop = loop
        self._thread = thread
        self._stop_event = stop_event

    def stop(self, timeout: float = 60.0) -> None:
        """Drain gracefully and join the server thread (idempotent)."""
        if not self._thread.is_alive():
            return
        self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():  # pragma: no cover - watchdog only
            raise TimeoutError("serve thread did not drain in time")

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.stop()
        return False


def start_server_thread(
    config: RunConfig,
    settings: ServeSettings | None = None,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    monitor=None,
) -> ServerHandle:
    """Run a :class:`ServeServer` on its own thread; returns its handle.

    The thread owns an event loop running the server until
    :meth:`ServerHandle.stop` (which drains gracefully).  Startup errors
    re-raise here rather than being swallowed by the thread.
    """
    started = threading.Event()
    holder: dict = {}

    async def _main() -> None:
        server = ServeServer(config, settings, monitor=monitor)
        stop_event = asyncio.Event()
        try:
            bound = await server.start(host, port)
        except BaseException as exc:  # surface bind/driver failures
            holder["error"] = exc
            started.set()
            raise
        holder.update(
            server=server, host=bound[0], port=bound[1],
            loop=asyncio.get_running_loop(), stop_event=stop_event,
        )
        started.set()
        await stop_event.wait()
        await server.drain()

    def _thread_main() -> None:
        try:
            asyncio.run(_main())
        except BaseException as exc:  # pragma: no cover - surfaced via stop
            holder.setdefault("error", exc)
            started.set()

    thread = threading.Thread(
        target=_thread_main, name="repro-serve", daemon=True
    )
    thread.start()
    started.wait(timeout=60.0)
    if "error" in holder:
        thread.join(timeout=5.0)
        raise holder["error"]
    if "server" not in holder:
        raise TimeoutError("serve thread did not start in time")
    return ServerHandle(
        holder["server"], holder["host"], holder["port"],
        holder["loop"], thread, holder["stop_event"],
    )
