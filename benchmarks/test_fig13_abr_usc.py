"""Fig. 13 + inset table: ABR, perfect ABR and ABR+USC speedups.

Paper inset (geomeans):
  reorder-friendly update:  RO 1.92x, ABR 1.85x, perfect 1.98x, ABR+USC 4.55x
  reorder-adverse  update:  RO 0.37x, ABR 0.87x, perfect 1.02x, ABR+USC 0.87x
  reorder-friendly overall: RO 1.77x, ABR 1.71x, perfect 1.81x, ABR+USC 3.49x
  reorder-adverse  overall: RO 0.78x, ABR 0.91x, perfect 1.00x, ABR+USC 0.91x
"""

from _harness import CellRun, emit, geomean, record
from repro.analysis.report import render_kv, render_table
from repro.datasets.profiles import BATCH_SIZES, DATASETS

SIZES = tuple(s for s in BATCH_SIZES if s <= 100_000)


def run_fig13():
    rows = []
    groups = {"friendly": [], "adverse": []}
    for name, profile in DATASETS.items():
        for batch_size in SIZES:
            cell = CellRun(profile, batch_size, with_compute=True)
            base = cell.baseline_update
            entry = {
                "ro": base / cell.ro_update,
                "abr": base / cell.abr_update(),
                "perfect": base / cell.perfect_abr_update(),
                "abr_usc": base / cell.abr_update(usc=True),
                "ro_overall": cell.overall(base) / cell.overall(cell.ro_update),
                "abr_overall": cell.overall(base) / cell.overall(cell.abr_update()),
                "perfect_overall": cell.overall(base)
                / cell.overall(cell.perfect_abr_update()),
                "usc_overall": cell.overall(base)
                / cell.overall(cell.abr_update(usc=True)),
            }
            category = "friendly" if profile.is_friendly(batch_size) else "adverse"
            groups[category].append(entry)
            rows.append(
                [name, batch_size, entry["ro"], entry["abr"], entry["perfect"],
                 entry["abr_usc"], category]
            )
    return rows, groups


def test_fig13_abr_usc(benchmark):
    rows, groups = benchmark.pedantic(run_fig13, rounds=1, iterations=1)
    inset = {}
    for category, entries in groups.items():
        for key in ("ro", "abr", "perfect", "abr_usc"):
            inset[f"{category} update {key}"] = geomean(e[key] for e in entries)
        for key in ("ro_overall", "abr_overall", "perfect_overall", "usc_overall"):
            inset[f"{category} {key}"] = geomean(e[key] for e in entries)
    emit(
        "fig13_abr_usc",
        render_table(
            ["dataset", "batch size", "RO", "ABR", "perfect ABR", "ABR+USC",
             "category"],
            rows,
            title="Fig. 13: update speedups over the baseline",
        )
        + "\n\n"
        + render_kv("inset (geomeans; paper: see module docstring)", inset),
    )
    record(
        "fig13_abr_usc",
        {
            "adverse_ro": inset["adverse update ro"],
            "adverse_abr": inset["adverse update abr"],
            "adverse_perfect": inset["adverse update perfect"],
            "friendly_abr": inset["friendly update abr"],
            "friendly_abr_usc": inset["friendly update abr_usc"],
        },
    )
    # Adverse: naive RO degrades badly; ABR recovers close to baseline.
    assert inset["adverse update ro"] < 0.8
    assert inset["adverse update abr"] > inset["adverse update ro"]
    assert inset["adverse update abr"] > 0.8
    # Perfect ABR never below ABR; close to 1.0 on adverse inputs.
    assert inset["adverse update perfect"] >= inset["adverse update abr"]
    assert 0.9 < inset["adverse update perfect"] <= 1.05
    # Friendly: ABR preserves the RO win; USC multiplies it.
    assert inset["friendly update abr"] > 1.5
    assert inset["friendly update abr_usc"] > 2 * inset["friendly update abr"]
    # Overall effects carry the same ordering.
    assert inset["adverse abr_overall"] > inset["adverse ro_overall"]
    assert inset["friendly usc_overall"] > inset["friendly abr_overall"]
