"""ASCII visualization of figure series — terminal-friendly bar charts.

The benchmarks print numeric tables; these helpers render the same series
as horizontal bar charts so a terminal run of ``repro characterize`` or a
benchmark transcript conveys the figures' shapes at a glance.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..errors import AnalysisError

__all__ = ["bar_chart", "grouped_bar_chart", "trajectory_chart"]

_FULL = "#"


def _bar(value: float, scale: float, width: int) -> str:
    cells = int(round(value * scale))
    return _FULL * max(cells, 1 if value > 0 else 0)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: str | None = None,
    width: int = 50,
    value_format: str = "{:.2f}",
    baseline: float | None = None,
) -> str:
    """Render one series as horizontal bars.

    Args:
        labels: bar labels.
        values: non-negative bar values.
        title: optional heading.
        width: character budget for the longest bar.
        value_format: numeric annotation format.
        baseline: optional reference value marked with ``|`` on each row
            (e.g. 1.0 for a speedup chart).
    """
    if len(labels) != len(values):
        raise AnalysisError("labels and values must have equal length")
    if not values:
        raise AnalysisError("nothing to chart")
    if any(v < 0 for v in values):
        raise AnalysisError("bar values must be non-negative")
    peak = max(max(values), baseline or 0.0)
    if peak == 0:
        peak = 1.0
    scale = width / peak
    label_width = max(len(label) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = _bar(value, scale, width)
        if baseline is not None:
            marker = int(round(baseline * scale))
            padded = list(bar.ljust(max(marker + 1, len(bar))))
            if 0 <= marker < len(padded):
                padded[marker] = "|"
            bar = "".join(padded).rstrip()
        annotation = value_format.format(value)
        lines.append(f"{label.rjust(label_width)}  {bar} {annotation}")
    return "\n".join(lines)


def trajectory_chart(
    scores: Sequence[float | None],
    title: str | None = None,
    width: int = 50,
    value_format: str = "{:.4g}",
) -> str:
    """Render an optimization trajectory (one row per trial).

    Scores are min-max normalized into the bar width so objectives of any
    sign/magnitude render sensibly; a ``None`` score marks a failed trial
    (``x`` row) and a trial achieving a new best is flagged with ``*``.

    Args:
        scores: per-trial objective values in trial order (None = failed).
        title: optional heading.
        width: character budget for the best trial's bar.
        value_format: numeric annotation format.
    """
    if not scores:
        raise AnalysisError("nothing to chart")
    finite = [s for s in scores if s is not None]
    if not finite:
        raise AnalysisError("every trial failed; nothing to chart")
    low, high = min(finite), max(finite)
    span = high - low
    label_width = len(str(len(scores) - 1))
    lines = [title] if title else []
    best: float | None = None
    for trial, score in enumerate(scores):
        label = str(trial).rjust(label_width)
        if score is None:
            lines.append(f"{label}  x (failed)")
            continue
        fraction = 1.0 if span == 0 else (score - low) / span
        bar = _FULL * max(1, int(round(fraction * width)))
        marker = ""
        if best is None or score > best:
            best = score
            marker = " *"
        lines.append(f"{label}  {bar} {value_format.format(score)}{marker}")
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Sequence[str],
    series: dict[str, Sequence[float]],
    title: str | None = None,
    width: int = 40,
    value_format: str = "{:.2f}",
) -> str:
    """Render several series side by side, grouped by x value.

    Args:
        groups: x-axis labels (one block per group).
        series: series name -> values (one per group).
    """
    if not series:
        raise AnalysisError("no series supplied")
    for name, values in series.items():
        if len(values) != len(groups):
            raise AnalysisError(
                f"series {name!r} has {len(values)} values for {len(groups)} groups"
            )
    peak = max(max(values) for values in series.values())
    if peak <= 0:
        peak = 1.0
    scale = width / peak
    name_width = max(len(name) for name in series)
    lines = [title] if title else []
    for index, group in enumerate(groups):
        lines.append(f"{group}:")
        for name, values in series.items():
            value = values[index]
            lines.append(
                f"  {name.rjust(name_width)}  "
                f"{_bar(value, scale, width)} {value_format.format(value)}"
            )
    return "\n".join(lines)
