"""Telemetry subsystem: core primitives, aggregation, exporters, reports."""

import json
import math
import pickle

import pytest

from repro.errors import ConfigurationError
from repro.pipeline.config import RunConfig
from repro.pipeline.executor import merged_telemetry, run_matrix
from repro.telemetry.core import (
    NULL_TELEMETRY,
    Decision,
    NullTelemetry,
    Telemetry,
    TelemetrySnapshot,
    as_telemetry,
    make_telemetry,
    merge_snapshots,
)
from repro.telemetry.export import to_prometheus, write_prometheus_textfile


# -- primitives ---------------------------------------------------------------

def test_counters_accumulate():
    tel = Telemetry("basic")
    tel.count("a")
    tel.count("a", 2.5)
    tel.count("b", 4)
    snap = tel.snapshot()
    assert snap.counter("a") == 3.5
    assert snap.counter("b") == 4
    assert snap.counter("missing") == 0.0


def test_gauges_keep_last_value():
    tel = Telemetry("basic")
    tel.gauge("g", 0.25)
    tel.gauge("g", 0.75)
    assert tel.snapshot().gauges["g"] == 0.75


def test_histogram_buckets_are_power_of_two():
    tel = Telemetry("full")
    for value in (0.5, 1, 2, 3, 1000):
        tel.observe("h", value)
    hist = tel.snapshot().histograms["h"]
    assert hist.count == 5
    assert hist.total == pytest.approx(1006.5)
    assert hist.min == 0.5 and hist.max == 1000
    # 0.5 and 1 -> bucket 0; 2 -> 1; 3 -> 2; 1000 -> ceil(log2(1000)) = 10.
    assert dict(hist.buckets) == {0: 2, 1: 1, 2: 1, 10: 1}
    assert hist.mean == pytest.approx(1006.5 / 5)


def test_span_timing_and_nesting():
    tel = Telemetry("full")
    with tel.span("outer"):
        with tel.span("inner"):
            pass
        with tel.span("inner"):
            pass
    spans = tel.snapshot().spans
    assert spans["outer"].count == 1
    assert spans["inner"].count == 2
    assert spans["outer"].total >= spans["inner"].total >= 0.0
    assert spans["inner"].min <= spans["inner"].max
    assert tel._max_span_depth == 2


def test_basic_level_skips_clock_reads():
    tel = Telemetry("basic")
    with tel.span("never"):
        tel.observe("also_never", 42)
    snap = tel.snapshot()
    assert snap.spans == {}
    assert snap.histograms == {}
    assert snap.level == "basic"


def test_decision_ledger_records_inputs():
    tel = Telemetry("basic")
    tel.decision("abr", choice="reorder", batch_id=3, cad=12.5, threshold=10.0)
    (d,) = tel.snapshot().decisions
    assert d.kind == "abr" and d.choice == "reorder" and d.batch_id == 3
    assert d.input("cad") == 12.5
    assert d.input("threshold") == 10.0
    assert d.input("nope", "fallback") == "fallback"


def test_decision_ledger_caps():
    from repro.telemetry import core

    tel = Telemetry("basic")
    original = core.MAX_DECISIONS
    core.MAX_DECISIONS = 5
    try:
        for i in range(8):
            tel.decision("abr", choice="x", batch_id=i)
    finally:
        core.MAX_DECISIONS = original
    snap = tel.snapshot()
    assert len(snap.decisions) == 5
    assert snap.counter("ledger.dropped") == 3


# -- null backend -------------------------------------------------------------

def test_null_backend_is_inert_and_shared():
    assert as_telemetry(None) is NULL_TELEMETRY
    assert make_telemetry(None) is NULL_TELEMETRY
    assert make_telemetry("off") is NULL_TELEMETRY
    assert not NULL_TELEMETRY.enabled
    NULL_TELEMETRY.count("x", 5)
    NULL_TELEMETRY.gauge("g", 1)
    NULL_TELEMETRY.observe("h", 1)
    NULL_TELEMETRY.decision("abr", choice="x")
    with NULL_TELEMETRY.span("s"):
        pass
    snap = NULL_TELEMETRY.snapshot()
    assert snap.counters == {} and snap.decisions == ()
    # The no-op span context manager is a shared singleton — hot paths
    # entering disabled spans allocate nothing.
    assert NULL_TELEMETRY.span("a") is NULL_TELEMETRY.span("b")
    assert NullTelemetry.__slots__ == ()


def test_make_telemetry_rejects_unknown_level():
    with pytest.raises(ConfigurationError):
        make_telemetry("verbose")
    with pytest.raises(ConfigurationError):
        Telemetry("off")  # the null backend owns "off"


# -- snapshots: merge + serialization ----------------------------------------

def _sample_snapshot(scale: float = 1.0) -> TelemetrySnapshot:
    tel = Telemetry("full")
    tel.count("edges", 100 * scale)
    tel.gauge("fraction", 0.5 * scale)
    tel.observe("sizes", 8 * scale)
    with tel.span("stage.update"):
        pass
    tel.decision("abr", choice="reorder", batch_id=int(scale), cad=scale)
    return tel.snapshot()


def test_merge_sums_counters_pools_spans_concatenates_ledgers():
    a, b = _sample_snapshot(1.0), _sample_snapshot(2.0)
    merged = merge_snapshots([a, b])
    assert merged.counter("edges") == 300
    assert merged.gauges["fraction"] == 1.0  # last-merged wins
    assert merged.spans["stage.update"].count == 2
    hist = merged.histograms["sizes"]
    assert hist.count == 2 and hist.total == pytest.approx(24.0)
    assert [d.batch_id for d in merged.decisions] == [1, 2]
    # Merge is deterministic in input order, not commutative for gauges.
    again = merge_snapshots([a, b])
    assert again == merged


def test_snapshot_dict_round_trip():
    snap = _sample_snapshot()
    restored = TelemetrySnapshot.from_dict(
        json.loads(json.dumps(snap.to_dict()))
    )
    assert restored == snap


def test_snapshot_pickles():
    snap = _sample_snapshot()
    assert pickle.loads(pickle.dumps(snap)) == snap


def test_decision_dict_round_trip():
    d = Decision(kind="oca", choice="defer", batch_id=None,
                 inputs=(("overlap", 0.4), ("threshold", 0.3)))
    assert Decision.from_dict(d.to_dict()) == d


# -- executor aggregation -----------------------------------------------------

def test_worker_aggregation_is_deterministic():
    # "basic" level records no wall-clock, so the merged aggregate must be
    # *identical* regardless of worker count.
    configs = [
        RunConfig(dataset=name, batch_size=500, algorithm="none",
                  mode="abr", num_batches=3, telemetry="basic")
        for name in ("fb", "wiki")
    ]
    serial = merged_telemetry(run_matrix(configs, jobs=1))
    parallel = merged_telemetry(run_matrix(configs, jobs=2))
    assert serial is not None
    assert serial.counter("pipeline.batches") == 6
    assert serial.counter("update.batches") == 6
    assert [d.kind for d in serial.decisions].count("strategy") == 6
    assert parallel == serial


def test_uninstrumented_cells_have_no_snapshot():
    configs = [RunConfig(dataset="fb", batch_size=500, algorithm="none",
                         mode="baseline", num_batches=2)]
    results = run_matrix(configs)
    assert results[0].telemetry is None
    assert merged_telemetry(results) is None


# -- pipeline instrumentation -------------------------------------------------

def test_pipeline_records_stages_counters_and_ledger(flat_profile):
    from repro.pipeline.runner import StreamingPipeline
    from repro.update.engine import UpdatePolicy

    tel = Telemetry("full")
    pipeline = StreamingPipeline(
        flat_profile, 200, "pr_static", UpdatePolicy.ABR_USC, telemetry=tel
    )
    pipeline.run(4)
    snap = tel.snapshot()
    for name in ("stage.generate", "stage.update", "stage.observe",
                 "stage.compute", "stage.record"):
        assert snap.spans[name].count == 4, name
    assert snap.counter("pipeline.batches") == 4
    assert snap.counter("update.batches") == 4
    assert snap.counter("update.edges") == 800
    assert snap.counter("snapshot.full_rebuilds") >= 1
    assert snap.histograms["pipeline.batch_edges"].count == 4
    assert len(snap.decisions_of("strategy")) == 4
    assert snap.decisions_of("abr")  # at least the first active batch
    abr = snap.decisions_of("abr")[0]
    assert abr.input("cad") is not None
    assert abr.input("threshold") is not None


def test_oca_decisions_reach_ledger(skewed_profile):
    from repro.compute.oca import OCAConfig
    from repro.pipeline.runner import StreamingPipeline
    from repro.update.engine import UpdatePolicy

    tel = Telemetry("basic")
    StreamingPipeline(
        skewed_profile, 500, "none", UpdatePolicy.BASELINE,
        use_oca=True, oca_config=OCAConfig(overlap_threshold=0.01, n=2),
        telemetry=tel,
    ).run(4)
    snap = tel.snapshot()
    assert snap.counter("oca.measurements") >= 1
    assert snap.counter("pipeline.deferred_batches") >= 1
    oca = snap.decisions_of("oca")
    assert oca and all(d.input("threshold") == 0.01 for d in oca)
    assert {d.choice for d in oca} <= {"aggregate", "pass"}


def test_hau_telemetry_counters():
    from repro.exec_model.machine import SIMULATED_MACHINE
    from repro.datasets.profiles import get_dataset
    from repro.pipeline.runner import StreamingPipeline
    from repro.hau.simulator import HAUSimulator
    from repro.update.engine import UpdatePolicy

    tel = Telemetry("full")
    StreamingPipeline(
        get_dataset("fb"), 500, "none", UpdatePolicy.ALWAYS_HAU,
        machine=SIMULATED_MACHINE, hau=HAUSimulator(), telemetry=tel,
    ).run(3)
    snap = tel.snapshot()
    assert snap.counter("hau.batches") == 3
    assert snap.counter("hau.tasks") > 0
    assert snap.counter("hau.noc_task_hops") > 0
    assert 0.0 <= snap.gauges["hau.local_fraction"] <= 1.0
    assert snap.histograms["hau.core_tasks"].count > 0


# -- exporters ----------------------------------------------------------------

def test_prometheus_exposition_format():
    snap = _sample_snapshot()
    text = to_prometheus(snap, labels={"dataset": "fb"})
    assert 'repro_edges_total{dataset="fb"} 100' in text
    assert 'repro_fraction{dataset="fb"} 0.5' in text
    # Histograms expose cumulative le buckets plus +Inf.
    assert 'le="+Inf"' in text
    assert "repro_sizes_count" in text or 'repro_sizes_bucket' in text
    assert text.endswith("\n")


def test_prometheus_textfile_is_atomic(tmp_path):
    target = tmp_path / "metrics" / "repro.prom"
    target.parent.mkdir()
    write_prometheus_textfile(_sample_snapshot(), target)
    content = target.read_text()
    assert "repro_edges_total" in content
    assert not list(target.parent.glob("*.tmp"))


# -- histogram quantiles ------------------------------------------------------

def test_histogram_quantiles_from_buckets():
    tel = Telemetry("full")
    for value in range(1, 101):  # 1..100
        tel.observe("h", value)
    hist = tel.snapshot().histograms["h"]
    # Bucketed quantiles are approximate: within the right power-of-two
    # bucket, clamped to observed [min, max].
    assert hist.quantile(0.0) == hist.min == 1
    assert hist.quantile(1.0) == hist.max == 100
    assert 32 <= hist.quantile(0.5) <= 64
    assert 64 <= hist.quantile(0.95) <= 100
    assert hist.quantile(0.5) <= hist.quantile(0.95) <= hist.quantile(0.99)
    p = hist.percentiles()
    assert set(p) == {"p50", "p95", "p99"}
    assert p["p50"] == hist.quantile(0.5)


def test_histogram_quantile_degenerate_cases():
    tel = Telemetry("full")
    tel.observe("single", 7.0)
    hist = tel.snapshot().histograms["single"]
    assert hist.quantile(0.5) == 7.0
    assert hist.percentiles() == {"p50": 7.0, "p95": 7.0, "p99": 7.0}


def test_render_summary_includes_percentiles_and_drop_warning():
    from repro.telemetry import core
    from repro.telemetry.export import render_summary

    tel = Telemetry("full")
    for value in (1, 2, 4, 8):
        tel.observe("sizes", value)
    original = core.MAX_DECISIONS
    core.MAX_DECISIONS = 2
    try:
        for i in range(5):
            tel.decision("abr", choice="x", batch_id=i)
    finally:
        core.MAX_DECISIONS = original
    text = render_summary(tel.snapshot())
    assert "p50~" in text and "p95~" in text and "p99~" in text
    assert "WARNING" in text and "3" in text


# -- math sanity --------------------------------------------------------------

def test_bucket_function_edges():
    from repro.telemetry.core import _bucket

    assert _bucket(0) == 0
    assert _bucket(1) == 0
    assert _bucket(2) == 1
    assert _bucket(1024) == 10
    assert _bucket(1025) == 11
    assert _bucket(2 ** 20) == 20
    assert _bucket(0.001) == 0
    assert _bucket(math.pi) == 2
