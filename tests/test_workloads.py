"""Evaluation workload matrix (Section 6.1)."""

import pytest

from repro.datasets.profiles import BATCH_SIZES
from repro.errors import ConfigurationError
from repro.pipeline.workloads import DEFAULT_BATCH_CAPS, Workload, workload_matrix


def test_matrix_has_260_workloads():
    assert sum(1 for __ in workload_matrix()) == 260


def test_friendster_uk_incremental_only():
    for workload in workload_matrix():
        if workload.profile.name in ("friendster", "uk"):
            assert not workload.algorithm.endswith("_static")


def test_full_matrix_without_exclusions_would_be_280():
    count = sum(
        1
        for w in workload_matrix(datasets=[n for n in ("lj", "wiki")])
    )
    # 2 datasets x 5 sizes x 4 algorithms.
    assert count == 40


def test_workload_names():
    w = next(iter(workload_matrix(datasets=["lj"], batch_sizes=(100,), algorithms=("pr",))))
    assert w.name == "lj-100-pr"


def test_num_batches_uses_caps():
    w = next(iter(workload_matrix(datasets=["lj"], batch_sizes=(100,), algorithms=("pr",))))
    assert w.num_batches() == DEFAULT_BATCH_CAPS[100]
    assert w.num_batches(caps={100: 3}) == 3


def test_num_batches_unknown_size_raises():
    w = next(iter(workload_matrix(datasets=["lj"], batch_sizes=(100,), algorithms=("pr",))))
    bad = Workload(profile=w.profile, batch_size=123, algorithm="pr")
    with pytest.raises(ConfigurationError):
        bad.num_batches()


def test_caps_defined_for_all_paper_sizes():
    assert set(DEFAULT_BATCH_CAPS) == set(BATCH_SIZES)
