"""End-to-end serve smoke: ``python -m repro.serve.smoke`` (make serve-smoke).

Starts a real ``repro serve`` subprocess, drives it with two concurrent
ingest clients plus a query client via the load generator, then sends
SIGINT and asserts the graceful-drain contract: exit code 0, every
admitted edge visible, and a final checkpoint on disk.  This is the CI
gate for the whole live-ingest path — protocol, admission, micro-batch
cutting, the driver thread, queries, heartbeat, and drain.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from .client import run_loadgen


def _wait_for_port(port_file: Path, process: subprocess.Popen,
                   timeout: float = 60.0) -> int:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise AssertionError(
                f"server exited early with code {process.returncode}"
            )
        try:
            text = port_file.read_text(encoding="utf-8").strip()
        except FileNotFoundError:
            text = ""
        if text:
            return int(text)
        time.sleep(0.02)
    raise AssertionError("server did not write its port file in time")


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        tmpdir = Path(tmp)
        port_file = tmpdir / "port"
        checkpoint_dir = tmpdir / "ckpt"
        heartbeat = tmpdir / "heartbeat.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (str(Path(__file__).resolve().parents[2]),
                        env.get("PYTHONPATH")) if p
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", "wiki",
                "--port", "0", "--port-file", str(port_file),
                "--serve-batch", "1000", "--serve-batch-min", "128",
                "--flush-ms", "50",
                "--checkpoint", str(checkpoint_dir), "--every", "2",
                "--heartbeat", str(heartbeat),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            port = _wait_for_port(port_file, process)
            report = asyncio.run(
                run_loadgen(
                    "127.0.0.1", port,
                    clients=2, edges=4000, submit_size=250,
                    query="pagerank_topk", query_interval=0.02,
                )
            )
            assert report["edges_sent"] == 8000, report
            assert report["server"]["lag_edges"] == 0, report["server"]
            assert report["server"]["batches"] >= 8, report["server"]
            assert report["ack_latency_s"]["p99"] >= 0.0

            process.send_signal(signal.SIGINT)
            stdout, __ = process.communicate(timeout=60)
        except BaseException:
            process.kill()
            process.wait()
            raise

        assert process.returncode == 0, (
            f"graceful drain must exit 0, got {process.returncode}\n{stdout}"
        )
        assert "draining" in stdout, stdout
        checkpoints = list(checkpoint_dir.glob("*"))
        assert checkpoints, (
            f"drain must leave a final checkpoint in {checkpoint_dir}\n{stdout}"
        )
        beat = json.loads(heartbeat.read_text(encoding="utf-8"))
        assert beat.get("serve", {}).get("visible_seq", 0) > 0, beat
        print(
            "serve smoke OK: "
            f"{report['edges_sent']} edges via 2 clients at "
            f"{report['edges_per_second']:.0f} edges/s, "
            f"{report.get('queries', {}).get('served', 0)} queries, "
            f"visible p99 "
            f"{report['server']['ingest_to_visible_s']['p99'] * 1e3:.1f} ms, "
            f"graceful drain -> exit 0, "
            f"{len(checkpoints)} checkpoint file(s)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
