"""Fig. 5: temporal stability of lj-100K's batch degree distribution.

Paper: across batch ids, the share of edges originating from each degree
bucket stays stable over time — the property that lets one ABR-active batch's
decision govern the following inert batches.
"""

import numpy as np

from _harness import emit
from repro.analysis.report import render_table
from repro.datasets.profiles import get_dataset
from repro.graph.stats import degree_mix


def run_fig05(num_batches=10):
    profile = get_dataset("lj")
    generator = profile.generator()
    return [
        degree_mix(generator.generate_batch(i, 100_000), side="out")
        for i in range(num_batches)
    ]


def test_fig05_temporal_stability(benchmark):
    mixes = benchmark.pedantic(run_fig05, rounds=1, iterations=1)
    headers = ["batch id"] + list(mixes[0].bucket_labels)
    rows = [
        [mix.batch_id] + [f"{p:.1f}" for p in mix.edge_percentages]
        for mix in mixes
    ]
    emit(
        "fig05_temporal_stability",
        render_table(
            headers, rows,
            title="Fig. 5: % of lj-100K edges from vertices of each degree bucket",
        ),
    )
    # Stability: every bucket's share drifts by < 3 percentage points.
    matrix = np.array([mix.edge_percentages for mix in mixes])
    drift = matrix.max(axis=0) - matrix.min(axis=0)
    assert drift.max() < 3.0
    # Shape: lj batches are dominated by degree-1/2 vertices (Fig. 5).
    first_two = matrix[:, 0] + matrix[:, 1]
    assert (first_two > 50.0).all()
