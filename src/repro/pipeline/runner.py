"""The streaming pipeline: interleaved update and compute (Section 3.1).

A :class:`StreamingPipeline` owns a dynamic graph, an update engine, a
compute algorithm (looked up in the registry of
:mod:`repro.compute.registry`) and (optionally) an OCA controller, and
drives them batch by batch through five explicit stages:

    generate -> ingest/update -> OCA observe -> compute-or-defer -> record

:meth:`StreamingPipeline.run` loops the stages over a stream slice;
:meth:`StreamingPipeline.step` exposes one batch at a time, so external
drivers (latency studies, checkpoint/resume loops, serving frontends) can
interleave their own work between batches.  Each stage communicates through
a :class:`BatchContext`.
"""

from __future__ import annotations

import dataclasses
import signal
import threading
import time
import uuid
from dataclasses import dataclass, field

import numpy as np

from ..compute.cost_model import compute_round_time
from ..compute.oca import OCAConfig, OCAController
from ..compute.registry import ALGORITHMS, AlgorithmContext, get_algorithm
from ..costs import (
    DEFAULT_COMPUTE_COSTS,
    DEFAULT_COSTS,
    ComputeCostParameters,
    CostParameters,
)
from ..datasets.profiles import DatasetProfile
from ..datasets.stream import Batch
from ..exec_model.machine import HOST_MACHINE, MachineConfig
from ..graph.base import DynamicGraph
from ..graph.formats import make_adjacency_graph
from ..telemetry.core import as_telemetry
from ..update.abr import ABRConfig
from ..update.engine import UpdateEngine, UpdatePolicy
from ..update.result import UpdateResult
from .metrics import BatchMetrics, RunMetrics

__all__ = ["ALGORITHMS", "BatchContext", "StreamingPipeline"]


class _GracefulInterrupt:
    """Turn the first SIGINT during a run into a batch-boundary stop.

    Installed around :meth:`StreamingPipeline.run`'s loop: the first
    Ctrl-C sets a flag the loop checks between batches (so the graph is
    never checkpointed mid-batch); a second Ctrl-C raises
    ``KeyboardInterrupt`` immediately for a hard abort.  Outside the main
    thread (where ``signal.signal`` is unavailable) this degrades to a
    no-op and the interrupt propagates as before.
    """

    def __init__(self):
        self.requested = False
        self._previous = None
        self._installed = False

    def _handle(self, signum, frame):
        if self.requested:
            raise KeyboardInterrupt
        self.requested = True

    def __enter__(self) -> "_GracefulInterrupt":
        if threading.current_thread() is threading.main_thread():
            try:
                self._previous = signal.signal(signal.SIGINT, self._handle)
                self._installed = True
            except ValueError:  # pragma: no cover - exotic embedding
                pass
        return self

    def __exit__(self, *exc_info) -> bool:
        if self._installed:
            signal.signal(signal.SIGINT, self._previous)
        return False


@dataclass
class BatchContext:
    """Mutable per-batch state threaded through the pipeline stages.

    Attributes:
        index: the batch's absolute position in the stream.
        final: True when this is the stream's last batch (OCA must not
            defer past it).
        batch: the generated input batch.
        update: the update phase's result.
        update_time: modeled update time charged to this batch (includes
            OCA instrumentation).
        overlap: OCA inter-batch locality measured on this batch, if any.
        deferred: True if OCA postponed this batch's compute round.
        affected: union of vertices touched since the last executed round.
        covered: batches the next executed round covers, oldest first.
        compute_time: modeled compute time charged to this batch.
        metrics: the recorded per-batch metrics (set by the record stage).
    """

    index: int
    final: bool = False
    batch: Batch | None = None
    update: UpdateResult | None = None
    update_time: float = 0.0
    overlap: float | None = None
    deferred: bool = False
    affected: np.ndarray | None = None
    covered: list[Batch] = field(default_factory=list)
    compute_time: float = 0.0
    metrics: BatchMetrics | None = None


class StreamingPipeline:
    """Drives repeated update+compute over a dataset's stream.

    Args:
        profile: the dataset to stream.
        batch_size: edges per input batch.
        algorithm: a registered algorithm name (see
            :data:`~repro.compute.registry.ALGORITHMS`; ``"pr"``/``"sssp"``
            are the incremental variants; ``"none"`` runs updates only).
        policy: update strategy policy (an
            :class:`~repro.update.engine.UpdatePolicy`, a registered
            selector name, or a selector instance).
        use_oca: enable overlap-based compute aggregation.
        machine: machine for the software cost models.
        costs / compute_costs: cost model parameters.
        abr_config: ABR parameters.
        oca_config: OCA parameters.
        hau: accelerator simulator (required for HAU policies).
        graph: pre-built graph to reuse; defaults to a fresh graph of the
            selected adjacency format.
        seed: stream generator seed.
        adjacency: adjacency-format name for the default graph (see
            :mod:`repro.graph.formats`); ignored when ``graph`` is given.
        telemetry: optional :class:`~repro.telemetry.core.Telemetry`
            backend threaded through every stage and subsystem (engine,
            OCA, HAU, snapshotter); None runs uninstrumented at ~zero cost.
    """

    def __init__(
        self,
        profile: DatasetProfile,
        batch_size: int,
        algorithm: str = "pr",
        policy: UpdatePolicy | str = UpdatePolicy.ABR_USC,
        use_oca: bool = False,
        machine: MachineConfig = HOST_MACHINE,
        costs: CostParameters = DEFAULT_COSTS,
        compute_costs: ComputeCostParameters = DEFAULT_COMPUTE_COSTS,
        abr_config: ABRConfig | None = None,
        oca_config: OCAConfig | None = None,
        hau=None,
        graph: DynamicGraph | None = None,
        seed: int = 7,
        pr_tolerance: float = 1e-7,
        pr_max_rounds: int = 100,
        sssp_source: int | None = None,
        trace=None,
        telemetry=None,
        adjacency: str | None = None,
        run_id: str | None = None,
    ):
        algorithm_cls = get_algorithm(algorithm)
        self.profile = profile
        self.batch_size = batch_size
        self.algorithm = algorithm
        self.machine = machine
        self.costs = costs
        self.compute_costs = compute_costs
        #: Telemetry backend shared by every stage and subsystem (created
        #: before the graph so format-level counters land on it too).
        self.telemetry = as_telemetry(telemetry)
        self.graph = graph or make_adjacency_graph(
            adjacency, profile.num_vertices, telemetry=self.telemetry
        )
        self.engine = UpdateEngine(
            self.graph,
            policy=policy,
            machine=machine,
            costs=costs,
            abr_config=abr_config,
            hau=hau,
            telemetry=self.telemetry,
        )
        self.oca = (
            OCAController(
                profile.num_vertices,
                config=oca_config,
                costs=costs,
                num_workers=machine.num_workers,
                telemetry=self.telemetry,
            )
            if use_oca
            else None
        )
        self.generator = profile.generator(seed=seed)
        self.pr_tolerance = pr_tolerance
        self.pr_max_rounds = pr_max_rounds
        #: Identifier shared by every process of this run (timeline tracks).
        self.run_id = run_id or f"{profile.name}-{uuid.uuid4().hex[:8]}"
        timeline = getattr(self.telemetry, "timeline", None)
        if timeline is not None:
            timeline.configure(run_id=self.run_id, process="coordinator")
        #: Optional TraceWriter receiving one event per batch.
        self.trace = trace
        if trace is not None and getattr(trace, "telemetry", None) is None:
            # The writer appends a telemetry summary line on close.
            trace.telemetry = self.telemetry
        if trace is not None and getattr(trace, "timeline_provider", None) is None:
            # close() then embeds every process's flight-recorder timeline.
            trace.timeline_provider = self.timeline_snapshots
        self._compute_ctx = AlgorithmContext(
            graph=self.graph,
            pr_tolerance=pr_tolerance,
            pr_max_rounds=pr_max_rounds,
            sssp_source=sssp_source,
            telemetry=self.telemetry,
        )
        #: The active compute algorithm (registry instance).
        self.compute = algorithm_cls(self._compute_ctx)
        self._pending_affected: np.ndarray | None = None
        self._pending_batches: list[Batch] = []
        #: Next stream position :meth:`step` will consume.
        self._cursor: int = 0
        #: Size of the most recently applied batch (heartbeat throughput).
        self.last_batch_edges: int = 0
        #: Metrics accumulated by :meth:`step` (reset by :meth:`run`).
        self.metrics = self._new_metrics()
        #: The RunConfig that built this pipeline, when one did
        #: (:meth:`~repro.pipeline.config.RunConfig.build_pipeline` sets it);
        #: checkpoints embed it so resume can reject mismatched configs.
        self.run_config = None

    def _new_metrics(self) -> RunMetrics:
        return RunMetrics(
            dataset=self.profile.name,
            batch_size=self.batch_size,
            algorithm=self.algorithm,
            mode=self.engine.policy_name,
        )

    # -- backwards-compatible views of the algorithm engines ------------------
    def _engine_of(self, name: str):
        if self.algorithm == name:
            return getattr(self.compute, "engine", None)
        return None

    @property
    def _incremental_pr(self):
        """The incremental PageRank engine (``algorithm="pr"`` only)."""
        return self._engine_of("pr")

    @property
    def _incremental_sssp(self):
        """The incremental SSSP engine (``algorithm="sssp"`` only)."""
        return self._engine_of("sssp")

    @property
    def _incremental_bfs(self):
        """The incremental BFS engine (``algorithm="bfs"`` only)."""
        return self._engine_of("bfs")

    @property
    def _incremental_cc(self):
        """The incremental CC engine (``algorithm="cc"`` only)."""
        return self._engine_of("cc")

    @property
    def _sssp_source(self) -> int | None:
        """The resolved SSSP/BFS source vertex, if any."""
        return self._compute_ctx.sssp_source

    # -- stages ---------------------------------------------------------------
    def _stage_generate(self, ctx: BatchContext) -> None:
        """Generate the batch at ``ctx.index`` and prime the algorithm."""
        ctx.batch = self.generator.generate_batch(ctx.index, self.batch_size)
        self.compute.ensure(self.graph, ctx.batch)

    def _stage_update(self, ctx: BatchContext) -> None:
        """Apply the batch to the graph under the configured policy."""
        ctx.update = self.engine.ingest(ctx.batch)
        ctx.update_time = ctx.update.time

    def _stage_observe(self, ctx: BatchContext) -> None:
        """OCA bookkeeping: measure overlap, decide whether to defer."""
        if self.oca is not None:
            observation = self.oca.observe(ctx.batch)
            ctx.update_time += observation.instrumentation
            ctx.overlap = observation.overlap
            ctx.deferred = observation.defer_compute and not ctx.final
        affected = ctx.batch.unique_vertices()
        if self._pending_affected is not None:
            affected = np.union1d(affected, self._pending_affected)
        ctx.affected = affected
        ctx.covered = self._pending_batches + [ctx.batch]

    def _stage_compute(self, ctx: BatchContext) -> None:
        """Run the compute round, or bank the batch for the next round."""
        if ctx.deferred:
            self._pending_affected = ctx.affected
            self._pending_batches = ctx.covered
            ctx.compute_time = 0.0
            return
        counters = self.compute.on_round(ctx.batch, ctx.affected, ctx.covered)
        ctx.compute_time = (
            0.0
            if counters is None
            else compute_round_time(counters, self.compute_costs, self.machine)
        )
        self._pending_affected = None
        self._pending_batches = []

    def _stage_record(self, ctx: BatchContext) -> None:
        """Record per-batch metrics and emit the trace event."""
        ctx.metrics = BatchMetrics(
            batch_id=ctx.batch.batch_id,
            update_time=ctx.update_time,
            compute_time=ctx.compute_time,
            strategy=ctx.update.strategy,
            deferred=ctx.deferred,
            aggregated_batches=0 if ctx.deferred else len(ctx.covered),
            cad=ctx.update.cad,
            overlap=ctx.overlap,
        )
        self.metrics.add(ctx.metrics)
        if self.trace is not None:
            from .tracing import TraceEvent

            self.trace.write(
                TraceEvent.from_metrics(
                    ctx.metrics,
                    dataset=self.profile.name,
                    batch_size=self.batch_size,
                    algorithm=self.algorithm,
                    mode=self.engine.policy_name,
                    abr_active=ctx.update.abr_active,
                )
            )

    # -- public API -------------------------------------------------------------
    @property
    def cursor(self) -> int:
        """The stream position (batch id) the next :meth:`step` will use."""
        return self._cursor

    def step(self, final: bool = False, batch: Batch | None = None) -> BatchMetrics:
        """Process exactly one batch and return its metrics.

        External drivers call this in their own loop (the pipeline keeps the
        stream cursor and accumulates :attr:`metrics`); pass ``final=True``
        on the stream's last batch so OCA cannot defer its results forever.

        Args:
            final: this is the stream's last batch.
            batch: externally supplied batch to process *instead of*
                generating one from the profile's stream — the open-ended
                live-ingest mode ``repro serve`` drives (the pipeline then
                needs no pre-materialized workload; the batch id is
                re-stamped to the cursor position if it disagrees).

        Returns:
            The batch's recorded :class:`~repro.pipeline.metrics.BatchMetrics`.
        """
        ctx = BatchContext(index=self._cursor, final=final)
        self._cursor += 1
        tel = self.telemetry
        tel.set_batch(ctx.index)
        with tel.span("pipeline.batch"):
            with tel.span("stage.generate"):
                if batch is None:
                    self._stage_generate(ctx)
                else:
                    if batch.batch_id != ctx.index:
                        batch = dataclasses.replace(batch, batch_id=ctx.index)
                    ctx.batch = batch
                    self.compute.ensure(self.graph, ctx.batch)
            with tel.span("stage.update"):
                self._stage_update(ctx)
            with tel.span("stage.observe"):
                self._stage_observe(ctx)
            with tel.span("stage.compute"):
                self._stage_compute(ctx)
            with tel.span("stage.record"):
                self._stage_record(ctx)
        self.last_batch_edges = ctx.batch.size
        if tel.enabled:
            tel.count("pipeline.batches")
            tel.observe("pipeline.batch_edges", ctx.batch.size)
            if ctx.deferred:
                tel.count("pipeline.deferred_batches")
            elif len(ctx.covered) > 1:
                tel.count("pipeline.aggregated_rounds")
                tel.count("pipeline.aggregated_batches", len(ctx.covered))
        return ctx.metrics

    def save_checkpoint(self, directory, keep: int = 3):
        """Capture the pipeline's state and atomically write it to ``directory``.

        Returns:
            The :class:`~pathlib.Path` of the written checkpoint file.
        """
        from .checkpoint import PipelineCheckpoint

        checkpoint = PipelineCheckpoint.capture(self)
        path = checkpoint.save_to_dir(directory, keep=keep)
        tel = self.telemetry
        if tel.enabled:
            tel.count("checkpoint.saves")
            tel.count("checkpoint.bytes", len(checkpoint.payload))
            tel.decision(
                "checkpoint",
                choice="save",
                batch_id=self._cursor - 1 if self._cursor else None,
                cursor=self._cursor,
                payload_bytes=len(checkpoint.payload),
            )
        return path

    def timeline_snapshots(self):
        """Every process's flight-recorder timeline for this run.

        The coordinator's own recorder plus — for sharded graphs — the
        clock-aligned worker timelines (live workers are queried through
        the transport; after ``close()`` the snapshots harvested at
        shutdown are returned).  Empty below telemetry level ``full``.
        """
        snapshots = []
        own = self.telemetry.timeline_snapshot()
        if own is not None:
            snapshots.append(own)
        worker_timelines = getattr(self.graph, "worker_timelines", None)
        if worker_timelines is not None:
            snapshots.extend(worker_timelines())
        return snapshots

    def run(
        self,
        num_batches: int | None = None,
        seed_offset: int = 0,
        *,
        resume_from=None,
        checkpoint_dir=None,
        checkpoint_every: int = 0,
        checkpoint_keep: int = 3,
        monitor=None,
    ) -> RunMetrics:
        """Stream ``num_batches`` batches through the pipeline.

        Args:
            num_batches: batches to process (defaults to all the profile's
                stream provides at this batch size).
            seed_offset: shift the stream start of a fresh run.
            resume_from: a :class:`~repro.pipeline.checkpoint.PipelineCheckpoint`
                or a path to one; the pipeline restores that state and
                continues the stream from its cursor instead of starting at
                ``seed_offset``.  The resumed run's final
                :class:`~repro.pipeline.metrics.RunMetrics` are bit-identical
                to the uninterrupted run's (stream generation is a pure
                function of position, and all adaptive state travels in the
                checkpoint).
            checkpoint_dir: when set (with ``checkpoint_every`` > 0), write a
                checkpoint into this directory every ``checkpoint_every``
                batches via atomic write-then-rename.
            checkpoint_every: batches between checkpoints; 0 disables.
            checkpoint_keep: newest checkpoints retained in
                ``checkpoint_dir`` (older ones are pruned).
            monitor: optional
                :class:`~repro.telemetry.heartbeat.HeartbeatMonitor`
                beaten after every batch (live heartbeat file and in-run
                Prometheus refresh); the monitor only observes, so it
                never perturbs the run's metrics.

        Returns:
            The run's :class:`~repro.pipeline.metrics.RunMetrics`.

        Raises:
            CheckpointError: ``resume_from`` is corrupt, was taken under a
                different run config, or its cursor falls outside the
                requested stream window.
        """
        if num_batches is None:
            num_batches = self.profile.num_batches(self.batch_size)
        end = seed_offset + num_batches
        if resume_from is not None:
            from ..errors import CheckpointError
            from .checkpoint import PipelineCheckpoint

            checkpoint = (
                resume_from
                if isinstance(resume_from, PipelineCheckpoint)
                else PipelineCheckpoint.load(resume_from)
            )
            checkpoint.restore(self)
            if not seed_offset <= self._cursor <= end:
                raise CheckpointError(
                    f"checkpoint cursor {self._cursor} is outside the requested "
                    f"stream window [{seed_offset}, {end})"
                )
            tel = self.telemetry
            if tel.enabled:
                tel.count("checkpoint.resumes")
                tel.decision(
                    "checkpoint",
                    choice="resume",
                    batch_id=None,
                    cursor=self._cursor,
                    batches_done=checkpoint.batches_done,
                )
        else:
            self._cursor = seed_offset
            self.metrics = self._new_metrics()
        since_checkpoint = 0
        with _GracefulInterrupt() as interrupt:
            while self._cursor < end and not interrupt.requested:
                batch_id = self._cursor
                started = time.perf_counter()
                self.step(final=self._cursor == end - 1)
                wall = time.perf_counter() - started
                since_checkpoint += 1
                if (
                    checkpoint_dir is not None
                    and checkpoint_every > 0
                    and since_checkpoint >= checkpoint_every
                    and self._cursor < end
                ):
                    self.save_checkpoint(checkpoint_dir, keep=checkpoint_keep)
                    since_checkpoint = 0
                    if monitor is not None:
                        monitor.note_checkpoint()
                if monitor is not None:
                    monitor.beat(
                        self.telemetry,
                        batch_id=batch_id,
                        batch_edges=self.last_batch_edges,
                        wall_seconds=wall,
                    )
            if interrupt.requested:
                # Graceful Ctrl-C path: the loop stopped at a batch
                # boundary, so the state is consistent — persist it (when
                # checkpointing is on) before surfacing the interrupt, so
                # `repro run --checkpoint` keeps the in-flight progress.
                if checkpoint_dir is not None and since_checkpoint > 0:
                    self.save_checkpoint(checkpoint_dir, keep=checkpoint_keep)
                    if monitor is not None:
                        monitor.note_checkpoint()
                raise KeyboardInterrupt
        return self.metrics
