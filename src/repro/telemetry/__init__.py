"""Run telemetry: instrumentation core, exporters, and the trace analyzer.

See ``docs/OBSERVABILITY.md`` for naming conventions and the trace schema.

* :mod:`repro.telemetry.core` — counters, gauges, histograms, timed spans,
  the decision ledger, and the no-op null backend;
* :mod:`repro.telemetry.export` — Prometheus textfile exporter and the
  human-readable summary;
* :mod:`repro.telemetry.report` — the offline analyzer behind
  ``repro report`` (imported lazily by the CLI; not re-exported here to
  keep ``import repro`` light).
"""

from .core import (
    NULL_TELEMETRY,
    TELEMETRY_LEVELS,
    Decision,
    HistogramStat,
    NullTelemetry,
    SpanStat,
    Telemetry,
    TelemetrySnapshot,
    as_telemetry,
    make_telemetry,
    merge_snapshots,
)
from .export import render_summary, to_prometheus, write_prometheus_textfile

__all__ = [
    "NULL_TELEMETRY",
    "TELEMETRY_LEVELS",
    "Decision",
    "HistogramStat",
    "NullTelemetry",
    "SpanStat",
    "Telemetry",
    "TelemetrySnapshot",
    "as_telemetry",
    "make_telemetry",
    "merge_snapshots",
    "render_summary",
    "to_prometheus",
    "write_prometheus_textfile",
]
