"""Baseline update methodology: edge-centric, lock-protected (Section 3.2).

The baseline assigns one thread per incoming edge.  Because separate threads
may update edges of the same vertex, each update acquires the vertex's lock
and performs the duplicate-check scan *inside* the critical section (the
check must be atomic with the insert, or two threads could both miss and
insert the same edge twice).  The paper's two contention observations drive
the model:

* a top-degree vertex requires one lock acquisition *per incoming edge*;
* the cost of a contended acquisition involves waiting for the previous
  holder's critical section, whose length is dominated by the duplicate-check
  scan of an edge array that is long precisely when the batch is high-degree.

Contention is *probabilistic*: a vertex whose updates are scattered through a
large batch rarely has two of them collide in time.  We model the collision
probability of vertex ``v`` as the fraction of the batch's duration during
which v's lock is held::

    phi_v = min(1, hold_v / D0)          D0 = estimated batch duration

where ``hold_v`` is v's total critical-section work (all scans + inserts) and
``D0`` is the no-contention makespan estimate.  Low-degree batches therefore
see essentially uncontended locks (cheap fast path), while a top-degree
vertex in a high-degree batch — whose ``hold_v`` rivals the whole batch's
duration — serializes fully, pays a handoff per acquisition and a contention
penalty, and burns blocked-thread spin time (the paper's Section 4.1
trade-off).  Every scan streams *cold* data: each updater is a different
core, so the vertex's edge array is re-fetched remotely each time.
"""

from __future__ import annotations

import numpy as np

from ..costs import CostParameters
from ..exec_model.machine import MachineConfig
from ..exec_model.parallel import PhaseTiming, makespan
from ..graph.base import BatchUpdateStats, DirectionStats, DynamicGraph

__all__ = ["baseline_update_timing"]


def _direction_base(
    direction: DirectionStats,
    graph: DynamicGraph,
    costs: CostParameters,
) -> tuple[np.ndarray, np.ndarray, float]:
    """Per-vertex (hold, k) and the direction's uncontended work."""
    k = direction.batch_degree.astype(np.float64)
    new = direction.new_edges.astype(np.float64)
    dup = direction.duplicates.astype(np.float64)
    search = graph.sum_search_cost(
        direction.batch_degree,
        direction.length_before,
        direction.new_edges,
        costs.scan_cold,
    )
    hold = search + new * costs.insert + dup * costs.weight_update
    base_work = float((k * (costs.dispatch + costs.lock_base) + hold).sum())
    return hold, k, base_work


def baseline_update_timing(
    stats: BatchUpdateStats,
    graph: DynamicGraph,
    costs: CostParameters,
    machine: MachineConfig,
) -> PhaseTiming:
    """Modeled makespan of the baseline (locked, edge-centric) update."""
    per_direction = []
    base_work = 0.0
    for direction in stats.directions:
        if direction.num_vertices == 0:
            continue
        hold, k, work = _direction_base(direction, graph, costs)
        per_direction.append((hold, k))
        base_work += work
    deletion_work = stats.deleted_edges * 2.0 * (
        costs.dispatch + costs.lock_base + costs.delete_op
    )
    if not per_direction:
        return makespan(
            deletion_work, 0.0, machine, costs.parallel_efficiency, costs.phase_spawn
        )

    # First pass: estimate the batch duration without contention.
    pool = machine.num_workers * costs.parallel_efficiency
    longest_hold = max(float(hold.max()) for hold, __ in per_direction)
    duration = max(base_work / pool, longest_hold)

    # Second pass: gate contention costs by each vertex's lock occupancy.
    total_work = base_work
    critical_path = longest_hold
    for hold, k in per_direction:
        phi = np.minimum(hold / duration, 1.0)
        contended = np.maximum(k - 1.0, 0.0) * phi
        contended_share = contended / np.maximum(k, 1.0)
        chain = phi * (
            k * costs.lock_base
            + contended * costs.lock_handoff
            + hold * (1.0 + costs.contention_cp_factor * contended_share)
        )
        extra_work = (
            contended * costs.lock_handoff
            + costs.contention_work_factor * hold * contended_share
        )
        total_work += float(extra_work.sum())
        critical_path = max(critical_path, float(chain.max()))
    # Deletions run as a second locked pass after all insertions (§4.4.3).
    total_work += deletion_work
    return makespan(
        total_work=total_work,
        critical_path=critical_path,
        machine=machine,
        efficiency=costs.parallel_efficiency,
        serial_prefix=costs.phase_spawn,
    )
