"""Social-network analytics: PageRank over a high-throughput event stream.

A recommendation backend (the paper's Pixie/GraphJet scenario) ingests large
batches of follow/interaction events and refreshes PageRank after each.
Large batches of a skewed social stream are exactly the reorder-friendly
case: ABR turns reordering on, USC coalesces the hub vertices' duplicate
checks, and OCA aggregates compute rounds whenever consecutive batches touch
the same celebrity-centred neighborhoods.

Run:  python examples/social_network_analytics.py
"""

import os

from repro import RunConfig, get_dataset

QUICK = os.environ.get("REPRO_EXAMPLE_QUICK") == "1"
BATCH_SIZE = 50_000 if QUICK else 100_000
NUM_BATCHES = 3 if QUICK else 6


def run_mode(mode, use_oca=False):
    config = RunConfig(
        "talk", BATCH_SIZE, algorithm="pr", mode=mode, use_oca=use_oca,
        pr_tolerance=1e-5, num_batches=NUM_BATCHES,
    )
    pipeline = config.build_pipeline()
    return pipeline.run(NUM_BATCHES), pipeline


def main() -> None:
    profile = get_dataset("talk")
    print(f"event stream: {profile.full_name}, batch size {BATCH_SIZE}\n")

    baseline, __ = run_mode("baseline")
    always_ro, __ = run_mode("always_ro")
    aware, pipeline = run_mode("abr_usc", use_oca=True)

    print(f"{'mode':26s}{'update (tu)':>14s}{'compute (tu)':>14s}{'total':>12s}")
    for label, run in [
        ("baseline", baseline),
        ("input-oblivious RO", always_ro),
        ("input-aware (ABR+USC+OCA)", aware),
    ]:
        print(f"{label:26s}{run.total_update_time:>14.0f}"
              f"{run.total_compute_time:>14.0f}{run.total_time:>12.0f}")

    print(f"\nupdate speedup over baseline: "
          f"RO {baseline.total_update_time / always_ro.total_update_time:.2f}x, "
          f"ABR+USC {baseline.total_update_time / aware.total_update_time:.2f}x")

    overlaps = [b.overlap for b in aware.batches if b.overlap is not None]
    print("inter-batch overlap measured by OCA:",
          [f"{o:.2f}" for o in overlaps])
    print("compute rounds scheduled:",
          sum(1 for b in aware.batches if not b.deferred), "of", NUM_BATCHES)

    # The analytics output itself: top-ranked accounts right now.
    ranks = pipeline._incremental_pr.as_array()
    top = ranks.argsort()[::-1][:5]
    print("\ntop-5 accounts by PageRank:")
    for v in top:
        print(f"  vertex {v}: rank {ranks[v]:.6f}, "
              f"in-degree {pipeline.graph.in_degree(int(v))}")


if __name__ == "__main__":
    main()
