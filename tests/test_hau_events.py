"""Event-driven HAU backend, cross-validated against the analytical one."""

import pytest

from conftest import make_batch
from repro.graph.adjacency_list import AdjacencyListGraph
from repro.hau.events import EventDrivenHAU
from repro.hau.simulator import HAUSimulator


def _uniform_batch(batch_id=0, size=300, n=512):
    return make_batch(
        [(batch_id * size + i) % n for i in range(size)],
        [(batch_id * size + i + 17) % n for i in range(size)],
        batch_id=batch_id,
    )


def test_empty_batch():
    graph = AdjacencyListGraph(16)
    result = EventDrivenHAU().simulate_batch(graph.apply_batch(make_batch([], [])))
    assert result.cycles == pytest.approx(1500.0)
    assert result.backpressured_tasks == 0


def test_all_tasks_complete():
    graph = AdjacencyListGraph(512)
    result = EventDrivenHAU().simulate_batch(graph.apply_batch(_uniform_batch()))
    assert sum(result.tasks_per_core.values()) == 600  # 300 edges x 2 dirs


def test_deterministic():
    def run():
        graph = AdjacencyListGraph(512)
        return EventDrivenHAU().simulate_batch(graph.apply_batch(_uniform_batch()))
    assert run().cycles == run().cycles


def test_matches_analytical_model_on_uniform_batch():
    """The two backends must agree within modeling tolerance."""
    graph_a = AdjacencyListGraph(512)
    analytical = HAUSimulator().simulate_batch(graph_a.apply_batch(_uniform_batch()))
    graph_b = AdjacencyListGraph(512)
    events = EventDrivenHAU().simulate_batch(graph_b.apply_batch(_uniform_batch()))
    assert events.cycles == pytest.approx(analytical.cycles, rel=0.35)
    assert events.tasks_per_core == analytical.tasks_per_core


def test_matches_analytical_model_on_hot_vertex():
    hot = make_batch([7] * 200, [(i + 10) % 512 for i in range(200)])
    graph_a = AdjacencyListGraph(512)
    analytical = HAUSimulator().simulate_batch(graph_a.apply_batch(hot))
    graph_b = AdjacencyListGraph(512)
    events = EventDrivenHAU().simulate_batch(graph_b.apply_batch(hot))
    # Chain-bound case: both must be dominated by the hot core.
    assert events.cycles == pytest.approx(analytical.cycles, rel=0.35)


def test_fifo_peak_bounded_by_capacity():
    graph = AdjacencyListGraph(512)
    result = EventDrivenHAU().simulate_batch(graph.apply_batch(_uniform_batch(size=800)))
    assert all(p <= 32 for p in result.fifo_peak_per_core.values())


def test_hot_vertex_backpressures_fifo():
    """A single-vertex flood overwhelms one consumer's FIFO."""
    graph = AdjacencyListGraph(512)
    graph.apply_batch(make_batch([7] * 400, [(i + 10) % 512 for i in range(400)]))
    hot = make_batch([7] * 400, [(i + 450) % 512 for i in range(400)], batch_id=1)
    result = EventDrivenHAU().simulate_batch(graph.apply_batch(hot))
    hot_peak = max(result.fifo_peak_per_core.values())
    assert hot_peak == 32  # saturated
    assert result.backpressured_tasks > 0


def test_cache_persistence_across_batches():
    sim = EventDrivenHAU()
    graph = AdjacencyListGraph(512)
    first = sim.simulate_batch(graph.apply_batch(_uniform_batch(0)))
    again = sim.simulate_batch(graph.apply_batch(_uniform_batch(0)))
    # Identical vertex set, now resident: cheaper despite longer adjacencies.
    assert again.cycles < first.cycles
