"""Property-based tests (hypothesis) on core invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from conftest import make_batch
from repro.compute.pagerank import IncrementalPageRank, StaticPageRank
from repro.compute.sssp import IncrementalSSSP, StaticSSSP
from repro.exec_model.machine import MachineConfig
from repro.exec_model.parallel import makespan
from repro.graph.adjacency_list import AdjacencyListGraph
from repro.graph.snapshot import take_snapshot
from repro.update.cad import cad_from_degrees

# -- edge-list strategy -------------------------------------------------------

N_VERTICES = 24

edges = st.lists(
    st.tuples(
        st.integers(0, N_VERTICES - 1),
        st.integers(0, N_VERTICES - 1),
        st.integers(1, 9),
    ),
    min_size=1,
    max_size=60,
).map(lambda es: [(u, v, w) for u, v, w in es if u != v])


def _apply(graph, edge_list, batch_id=0, deletes=None):
    if not edge_list:
        return None
    src = [e[0] for e in edge_list]
    dst = [e[1] for e in edge_list]
    # Weight as a pure function of the pair, matching the generators'
    # convention (duplicates refresh to the same value).
    weight = [float((u * 31 + v * 7) % 9 + 1) for u, v, __ in edge_list]
    return graph.apply_batch(
        make_batch(src, dst, weight, batch_id=batch_id, is_delete=deletes)
    )


# -- graph structure ------------------------------------------------------------


@given(edges)
@settings(max_examples=60, deadline=None)
def test_adjacency_matches_reference_model(edge_list):
    graph = AdjacencyListGraph(N_VERTICES)
    _apply(graph, edge_list)
    reference: dict[int, dict[int, float]] = {}
    for u, v, __ in edge_list:
        reference.setdefault(u, {})[v] = float((u * 31 + v * 7) % 9 + 1)
    for u, expected in reference.items():
        assert graph.out_neighbors(u) == expected
    assert graph.num_edges == sum(len(d) for d in reference.values())
    # In-adjacency mirrors out-adjacency.
    for u, nbrs in reference.items():
        for v in nbrs:
            assert u in graph.in_neighbors(v)


@given(edges)
@settings(max_examples=40, deadline=None)
def test_direction_stats_are_consistent(edge_list):
    graph = AdjacencyListGraph(N_VERTICES)
    stats = _apply(graph, edge_list)
    if stats is None:
        return
    for direction in stats.directions:
        assert (direction.new_edges <= direction.batch_degree).all()
        assert (direction.new_edges >= 0).all()
        assert (direction.length_before >= 0).all()
        assert direction.num_edges == len(edge_list)
    assert int(stats.out.new_edges.sum()) == graph.num_edges


@given(edges, edges)
@settings(max_examples=30, deadline=None)
def test_snapshot_roundtrip(first, second):
    graph = AdjacencyListGraph(N_VERTICES)
    _apply(graph, first, 0)
    _apply(graph, second, 1)
    snap = take_snapshot(graph)
    for v in range(N_VERTICES):
        targets, weights = snap.out_slice(v)
        assert dict(zip(targets.tolist(), weights.tolist())) == graph.out_neighbors(v)


# -- CAD ---------------------------------------------------------------------


@given(
    st.lists(st.integers(1, 1000), min_size=1, max_size=50),
    st.integers(1, 500),
)
@settings(max_examples=100, deadline=None)
def test_cad_invariants(degrees, lam):
    degrees = np.asarray(degrees)
    b = int(degrees.sum())
    value = cad_from_degrees(degrees, b, lam)
    assert value >= 0.0
    top = degrees[degrees > lam]
    if len(top) == 0:
        assert value == 0.0
    else:
        # CAD is the average degree of the top vertices: bounded by them.
        assert top.min() <= value <= top.max() + 1e-9
        assert value > lam


@given(st.lists(st.integers(1, 300), min_size=1, max_size=30))
@settings(max_examples=60, deadline=None)
def test_cad_monotone_in_lambda(degrees):
    """Raising lambda never resurrects a zero CAD."""
    degrees = np.asarray(degrees)
    b = int(degrees.sum())
    previous_zero = False
    for lam in (1, 4, 16, 64, 256):
        value = cad_from_degrees(degrees, b, lam)
        if previous_zero:
            assert value == 0.0
        previous_zero = value == 0.0


# -- makespan model --------------------------------------------------------------


@given(
    st.floats(0, 1e9),
    st.floats(0, 1e9),
    st.integers(1, 128),
    st.floats(0.05, 1.0),
)
@settings(max_examples=100, deadline=None)
def test_makespan_bounds(work, chain, workers, efficiency):
    machine = MachineConfig(name="m", num_workers=workers)
    timing = makespan(work, chain, machine, efficiency)
    assert timing.makespan >= chain
    assert timing.makespan >= work / (workers * efficiency) - 1e-6
    assert timing.makespan <= chain + work / (workers * efficiency) + 1e-6


@given(st.floats(1, 1e9), st.floats(0, 1e9), st.integers(1, 64))
@settings(max_examples=60, deadline=None)
def test_makespan_monotone_in_work(work, chain, workers):
    machine = MachineConfig(name="m", num_workers=workers)
    lo = makespan(work, chain, machine, 0.8)
    hi = makespan(work * 2, chain, machine, 0.8)
    assert hi.makespan >= lo.makespan


# -- algorithms ---------------------------------------------------------------


@given(edges, edges)
@settings(max_examples=25, deadline=None)
def test_incremental_pagerank_matches_static(first, second):
    graph = AdjacencyListGraph(N_VERTICES)
    incremental = IncrementalPageRank(graph, tolerance=1e-13)
    for batch_id, edge_list in enumerate((first, second)):
        stats = _apply(graph, edge_list, batch_id)
        if stats is None:
            continue
        affected = set()
        for u, v, __ in edge_list:
            affected.add(u)
            affected.add(v)
        incremental.on_batch(affected)
    static, __ = StaticPageRank(tolerance=1e-14, max_iterations=500).run(
        take_snapshot(graph)
    )
    np.testing.assert_allclose(incremental.as_array(), static, atol=1e-8)


@given(edges, edges, st.lists(st.booleans(), min_size=60, max_size=60))
@settings(max_examples=25, deadline=None)
def test_incremental_sssp_matches_static_with_deletes(first, second, delete_bits):
    graph = AdjacencyListGraph(N_VERTICES)
    sssp = IncrementalSSSP(graph, source=0)
    stats = _apply(graph, first, 0)
    if stats is not None:
        sssp.on_batch(_rebuild_batch(first, 0))
    if second:
        deletes = delete_bits[: len(second)]
        batch = _rebuild_batch(second, 1, deletes)
        graph.apply_batch(batch)
        sssp.on_batch(batch)
    static, __ = StaticSSSP(0).run(take_snapshot(graph))
    for got, want in zip(sssp.dist, static):
        if math.isinf(want):
            assert math.isinf(got)
        else:
            assert got == pytest.approx(want)


def _rebuild_batch(edge_list, batch_id, deletes=None):
    src = [e[0] for e in edge_list]
    dst = [e[1] for e in edge_list]
    weight = [float((u * 31 + v * 7) % 9 + 1) for u, v, __ in edge_list]
    return make_batch(src, dst, weight, batch_id=batch_id, is_delete=deletes)
