"""Dataset profiles and synthetic stream generation.

Public surface:

* :class:`~repro.datasets.stream.Batch` / :class:`~repro.datasets.stream.EdgeStream`
  — stream containers;
* :class:`~repro.datasets.generators.SideProfile` /
  :class:`~repro.datasets.generators.StreamGenerator` — calibrated synthetic
  generators;
* :data:`~repro.datasets.profiles.DATASETS` and helpers — the 14 evaluated
  dataset profiles (Table 2).
"""

from .stream import Batch, EdgeStream, batches_from_arrays
from .generators import SideProfile, StreamGenerator
from .loaders import read_edge_list, stream_from_file, write_edge_list
from .rmat import RMATGenerator
from .profiles import (
    BATCH_SIZES,
    DATASETS,
    TABLE3_BATCH_SIZES,
    TABLE3_DATASETS,
    DatasetProfile,
    dataset_names,
    friendly_cells,
    get_dataset,
)

__all__ = [
    "Batch",
    "EdgeStream",
    "batches_from_arrays",
    "SideProfile",
    "StreamGenerator",
    "RMATGenerator",
    "read_edge_list",
    "stream_from_file",
    "write_edge_list",
    "BATCH_SIZES",
    "DATASETS",
    "TABLE3_BATCH_SIZES",
    "TABLE3_DATASETS",
    "DatasetProfile",
    "dataset_names",
    "friendly_cells",
    "get_dataset",
]
