"""Checkpoint/resume tests: atomic persistence, validation, bit-identity.

The load-bearing property is the acceptance criterion: kill a checkpointed
run mid-stream, resume from the newest checkpoint in a fresh process-like
pipeline, and the final :class:`RunMetrics` — exact float comparisons, no
tolerance — equal the uninterrupted run's.  That holds because stream
generation is a pure function of the cursor and every piece of adaptive
state (graph, ABR, OCA, incremental compute engines, metrics) travels in
the checkpoint payload.
"""

import dataclasses
import multiprocessing

import pytest

import faultinject
from repro.errors import CheckpointError
from repro.pipeline import PipelineCheckpoint, RunConfig, latest_checkpoint
from repro.pipeline.checkpoint import checkpoint_path

pytestmark = pytest.mark.faults

CONFIG = RunConfig(
    dataset="wiki", batch_size=200, num_batches=12,
    algorithm="pr", mode="dynamic", use_oca=True,
)


def _run_uninterrupted(config=CONFIG):
    return config.build_pipeline().run(config.num_batches)


# -- file format ------------------------------------------------------------
def test_checkpoint_file_round_trip(tmp_path):
    pipeline = CONFIG.build_pipeline()
    pipeline.run(5)
    checkpoint = PipelineCheckpoint.capture(pipeline)
    path = checkpoint.save(tmp_path / "one.ckpt")
    loaded = PipelineCheckpoint.load(path)
    assert loaded.cursor == 5
    assert loaded.batches_done == 5
    assert loaded.config == CONFIG.to_dict()
    assert loaded.payload == checkpoint.payload
    assert loaded.summary["dataset"] == "wiki"
    assert loaded.summary["abr"]["decisions_made"] >= 1


def test_checkpoint_summary_is_json_header(tmp_path):
    """The header line is human-readable JSON (inspectable sans unpickling)."""
    import json

    pipeline = CONFIG.build_pipeline()
    pipeline.run(3)
    path = PipelineCheckpoint.capture(pipeline).save(tmp_path / "one.ckpt")
    with open(path, "rb") as handle:
        assert handle.readline() == b"REPRO-CKPT\n"
        header = json.loads(handle.readline())
    assert header["cursor"] == 3
    assert header["config"]["dataset"] == "wiki"


def test_corrupt_payload_rejected(tmp_path):
    pipeline = CONFIG.build_pipeline()
    pipeline.run(3)
    path = PipelineCheckpoint.capture(pipeline).save(tmp_path / "one.ckpt")
    blob = bytearray(path.read_bytes())
    blob[-10] ^= 0xFF  # flip a payload bit; the CRC must catch it
    path.write_bytes(bytes(blob))
    with pytest.raises(CheckpointError, match="checksum"):
        PipelineCheckpoint.load(path)


def test_truncated_file_rejected(tmp_path):
    pipeline = CONFIG.build_pipeline()
    pipeline.run(3)
    path = PipelineCheckpoint.capture(pipeline).save(tmp_path / "one.ckpt")
    path.write_bytes(path.read_bytes()[:-40])
    with pytest.raises(CheckpointError, match="truncated"):
        PipelineCheckpoint.load(path)


def test_not_a_checkpoint_rejected(tmp_path):
    path = tmp_path / "bogus.ckpt"
    path.write_bytes(b"hello world\n" * 10)
    with pytest.raises(CheckpointError, match="magic"):
        PipelineCheckpoint.load(path)


def test_latest_checkpoint_skips_corrupt_newest(tmp_path):
    """A file corrupted (or torn) after rename falls back to the previous one."""
    pipeline = CONFIG.build_pipeline()
    pipeline.run(3)
    pipeline.save_checkpoint(tmp_path)
    pipeline.run(6, resume_from=PipelineCheckpoint.capture(pipeline))
    pipeline.save_checkpoint(tmp_path)
    newest = checkpoint_path(tmp_path, 6)
    blob = bytearray(newest.read_bytes())
    blob[-1] ^= 0xFF
    newest.write_bytes(bytes(blob))
    found = latest_checkpoint(tmp_path)
    assert found is not None
    checkpoint, path = found
    assert checkpoint.cursor == 3
    assert path == checkpoint_path(tmp_path, 3)


def test_latest_checkpoint_empty_dir(tmp_path):
    assert latest_checkpoint(tmp_path) is None
    assert latest_checkpoint(tmp_path / "missing") is None


def test_retention_prunes_old_checkpoints(tmp_path):
    pipeline = CONFIG.build_pipeline()
    pipeline.run(
        10, checkpoint_dir=tmp_path, checkpoint_every=2, checkpoint_keep=2
    )
    names = sorted(p.name for p in tmp_path.glob("ckpt-*.ckpt"))
    assert names == ["ckpt-00000006.ckpt", "ckpt-00000008.ckpt"]


# -- validation -------------------------------------------------------------
def test_config_mismatch_rejected(tmp_path):
    pipeline = CONFIG.build_pipeline()
    pipeline.run(4)
    checkpoint = PipelineCheckpoint.capture(pipeline)
    other = dataclasses.replace(CONFIG, batch_size=500).build_pipeline()
    with pytest.raises(CheckpointError, match="different run config"):
        checkpoint.restore(other)


def test_cursor_outside_window_rejected(tmp_path):
    pipeline = CONFIG.build_pipeline()
    pipeline.run(8)
    checkpoint = PipelineCheckpoint.capture(pipeline)
    fresh = CONFIG.build_pipeline()
    with pytest.raises(CheckpointError, match="outside the requested"):
        fresh.run(4, resume_from=checkpoint)


# -- resume bit-identity ----------------------------------------------------
def test_resume_bit_identical_in_process(tmp_path):
    expected = _run_uninterrupted()
    interrupted = CONFIG.build_pipeline()
    interrupted.run(7, checkpoint_dir=tmp_path, checkpoint_every=3)
    checkpoint, _ = latest_checkpoint(tmp_path)
    assert checkpoint.cursor == 6
    resumed = CONFIG.build_pipeline()
    metrics = resumed.run(CONFIG.num_batches, resume_from=checkpoint)
    assert metrics == expected  # frozen dataclass equality: exact floats


@pytest.mark.parametrize("algorithm,mode,use_oca", [
    ("pr", "sw_only", False),
    ("sssp", "abr_usc", False),
    ("none", "dynamic", True),
])
def test_resume_bit_identical_across_cells(tmp_path, algorithm, mode, use_oca):
    config = dataclasses.replace(
        CONFIG, algorithm=algorithm, mode=mode, use_oca=use_oca, num_batches=10
    )
    expected = _run_uninterrupted(config)
    pipeline = config.build_pipeline()
    pipeline.run(5)
    checkpoint = PipelineCheckpoint.capture(pipeline)
    resumed = config.build_pipeline()
    assert resumed.run(10, resume_from=checkpoint) == expected


def test_checkpoint_telemetry_counters(tmp_path):
    config = dataclasses.replace(CONFIG, telemetry="full")
    pipeline = config.build_pipeline()
    pipeline.run(6, checkpoint_dir=tmp_path, checkpoint_every=2)
    snapshot = pipeline.telemetry.snapshot()
    assert snapshot.counters["checkpoint.saves"] == 2.0  # after batch 2 and 4
    assert snapshot.counters["checkpoint.bytes"] > 0
    resumed = config.build_pipeline()
    resumed.run(6, resume_from=latest_checkpoint(tmp_path)[0])
    snapshot = resumed.telemetry.snapshot()
    assert snapshot.counters["checkpoint.resumes"] == 1.0
    assert any(d.kind == "checkpoint" for d in snapshot.decisions)


# -- the acceptance criterion: kill, resume, compare ------------------------
@pytest.mark.parametrize("adjacency", ["dict", "hybrid"])
def test_kill_and_resume_bit_identical(tmp_path, adjacency):
    """Hard-kill a checkpointed run mid-stream (os._exit in a child
    process), resume from the newest on-disk checkpoint in a fresh
    pipeline, and the final RunMetrics equal the uninterrupted run's.
    Runs under both adjacency formats: the hybrid graph's pooled arrays
    and hub dicts must survive the pickle round trip mid-promotion."""
    config = dataclasses.replace(CONFIG, adjacency=adjacency)
    expected = _run_uninterrupted(config)

    checkpoint_dir = tmp_path / "ckpts"
    child = multiprocessing.Process(
        target=faultinject.run_checkpointed_and_die,
        args=(config.to_json(), str(checkpoint_dir), 2, 7),
    )
    child.start()
    child.join(timeout=120)
    assert child.exitcode == 17  # died at batch 7, as injected

    found = latest_checkpoint(checkpoint_dir)
    assert found is not None
    checkpoint, _ = found
    assert checkpoint.cursor == 6  # checkpoints at 2, 4, 6; died before 7

    resumed = config.build_pipeline()
    metrics = resumed.run(config.num_batches, resume_from=checkpoint)
    assert metrics == expected
    assert metrics.batches == expected.batches  # per-batch rows, exact


def test_cli_checkpoint_resume(tmp_path, capsys):
    """`repro run --checkpoint DIR` resumes automatically and reproduces
    the uninterrupted run's printed totals."""
    from repro.cli import main

    args = [
        "run", "wiki", "--batch-size", "200", "--num-batches", "10",
        "--checkpoint", str(tmp_path / "ckpts"), "--every", "3",
    ]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert main(args) == 0
    second = capsys.readouterr().out
    assert "resuming from" in second
    # Identical metrics block (strip the resume banner line).
    body = "\n".join(
        line for line in second.splitlines() if not line.startswith("resuming")
    )
    assert body.strip() == first.strip()
