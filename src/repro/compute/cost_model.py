"""Compute-phase cost model.

The compute engines run the real algorithms and report work counters
(:class:`~repro.compute.result.ComputeCounters`); this module converts those
counters into modeled time.  The fixed ``round_sched`` term is what OCA's
aggregation amortizes (Fig. 12: ``TC_agg < TC_n + TC_n+1`` because launching
a round has scheduling and data-access overheads of its own), alongside the
redundant touched-region work that a single aggregated round performs once.
"""

from __future__ import annotations

from ..costs import DEFAULT_COMPUTE_COSTS, ComputeCostParameters
from ..exec_model.machine import HOST_MACHINE, MachineConfig
from .result import ComputeCounters

__all__ = ["compute_round_time"]


def compute_round_time(
    counters: ComputeCounters,
    costs: ComputeCostParameters = DEFAULT_COMPUTE_COSTS,
    machine: MachineConfig = HOST_MACHINE,
) -> float:
    """Modeled elapsed time of one computation round.

    ``round_sched`` is paid once per scheduled round; each iteration pays a
    barrier; vertex/edge work divides across the worker pool.
    """
    parallel_work = (
        counters.touched_vertices * costs.per_vertex
        + counters.touched_edges * costs.per_edge
    )
    return (
        costs.round_sched
        + counters.iterations * costs.iteration_overhead
        + parallel_work / (machine.num_workers * costs.parallel_efficiency)
    )
