"""Table 3: ABR+USC+HAU vs ABR+USC on the simulated CMP (Table 1).

Paper: across the reorder-adverse cells of 8 datasets x {100, 1K, 10K, 100K},
HAU improves updates by 2.6x on average (max 7.5x); reorder-friendly cells
(topcats/berkstan/superuser at 100K) stay in software (1x).  Overall gains
track the update share.
"""

from _harness import emit, geomean, num_batches, record
from repro.analysis.report import render_kv, render_table
from repro.compute.cost_model import compute_round_time
from repro.compute.pagerank import IncrementalPageRank
from repro.datasets.profiles import TABLE3_BATCH_SIZES, TABLE3_DATASETS, get_dataset
from repro.exec_model.machine import SIMULATED_MACHINE
from repro.graph.adjacency_list import AdjacencyListGraph
from repro.hau.simulator import HAUSimulator
from repro.update.engine import UpdateEngine, UpdatePolicy


def _run_cell(name, batch_size):
    profile = get_dataset(name)
    nb = num_batches(profile, batch_size)
    machine = SIMULATED_MACHINE

    def one(policy, hau=None):
        graph = AdjacencyListGraph(profile.num_vertices)
        engine = UpdateEngine(graph, policy, machine=machine, hau=hau)
        pagerank = IncrementalPageRank(graph, tolerance=1e-5, max_rounds=12)
        update = 0.0
        compute = 0.0
        per_batch_overall = []
        for batch in profile.generator().batches(batch_size, nb):
            u = engine.ingest(batch).time
            counters = pagerank.on_batch(batch.unique_vertices())
            c = compute_round_time(counters, machine=machine)
            update += u
            compute += c
            per_batch_overall.append((u, c))
        return update, compute, per_batch_overall

    sw_update, sw_compute, sw_batches = one(UpdatePolicy.ABR_USC)
    hw_update, __, hw_batches = one(UpdatePolicy.ABR_USC_HAU, hau=HAUSimulator())
    overall_avg = (sw_update + sw_compute) / (hw_update + sw_compute)
    overall_max = max(
        (su + sc) / (hu + sc)
        for (su, sc), (hu, __) in zip(sw_batches, hw_batches)
    )
    return sw_update / hw_update, overall_avg, overall_max


def run_table3():
    table = {}
    for name in TABLE3_DATASETS:
        for batch_size in TABLE3_BATCH_SIZES:
            table[(name, batch_size)] = _run_cell(name, batch_size)
    return table


def test_table3_hau(benchmark):
    table = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    rows = [
        [name, size, update, avg, mx]
        for (name, size), (update, avg, mx) in table.items()
    ]
    applied = [u for (n, s), (u, __, ___) in table.items() if u > 1.001]
    record(
        "table3_hau",
        {"geomean": geomean(applied), "max": max(applied)},
    )
    emit(
        "table3_hau",
        render_table(
            ["dataset", "batch size", "update speedup",
             "overall (average)", "overall (max)"],
            rows,
            title="Table 3: ABR+USC+HAU normalized to ABR+USC (simulated CMP)",
        )
        + "\n\n"
        + render_kv(
            "summary",
            {
                "geomean update speedup on HAU-applied cells": geomean(applied),
                "max update speedup": max(applied),
                "paper": "average 2.6x, max 7.5x",
            },
        ),
    )
    # Friendly 100K cells run in software: exactly 1x.
    for name in ("topcats", "berkstan", "superuser"):
        update, __, ___ = table[(name, 100_000)]
        assert abs(update - 1.0) < 0.01, name
    # Every HAU-applied cell gains; the average sits in the paper's band.
    assert all(u > 1.2 for u in applied)
    assert 1.8 < geomean(applied) < 4.5
    # Overall >= 1 and <= update speedup (update is only part of the time).
    for (name, size), (update, avg, mx) in table.items():
        assert avg >= 0.99
        assert mx >= avg - 1e-9
        assert avg <= update + 0.01
